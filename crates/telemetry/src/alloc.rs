//! A counting global allocator for memory-profile harnesses: wraps the
//! system allocator and tracks live bytes, the high-water mark, and the
//! total allocation count with relaxed atomics.
//!
//! Install it per-binary (benches, release-gated memory tests):
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: CountingAllocator = CountingAllocator;
//! ```
//!
//! then bracket the region of interest with
//! [`reset_high_water`] / [`high_water_bytes`] to measure its heap
//! high-water delta, or diff [`allocation_count`] to count allocations.
//! The counters are process-global and racy-by-design (relaxed
//! ordering): measurements are exact on a single thread and a faithful
//! upper bound under concurrency, which is all a regression tripwire
//! needs. When the allocator is *not* installed every reader returns 0,
//! so gauges fed from here are safely inert in ordinary binaries.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering::Relaxed};

static LIVE: AtomicUsize = AtomicUsize::new(0);
static HIGH_WATER: AtomicUsize = AtomicUsize::new(0);
static ALLOCS: AtomicUsize = AtomicUsize::new(0);

/// A [`System`]-backed allocator that counts bytes and allocations.
pub struct CountingAllocator;

// SAFETY: delegates allocation entirely to `System`; the bookkeeping
// only touches lock-free atomics, which is allocator-reentrancy safe.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let ptr = System.alloc(layout);
        if !ptr.is_null() {
            ALLOCS.fetch_add(1, Relaxed);
            let live = LIVE.fetch_add(layout.size(), Relaxed) + layout.size();
            HIGH_WATER.fetch_max(live, Relaxed);
        }
        ptr
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        LIVE.fetch_sub(layout.size(), Relaxed);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let new_ptr = System.realloc(ptr, layout, new_size);
        if !new_ptr.is_null() {
            ALLOCS.fetch_add(1, Relaxed);
            if new_size >= layout.size() {
                let live =
                    LIVE.fetch_add(new_size - layout.size(), Relaxed) + new_size - layout.size();
                HIGH_WATER.fetch_max(live, Relaxed);
            } else {
                LIVE.fetch_sub(layout.size() - new_size, Relaxed);
            }
        }
        new_ptr
    }
}

/// Bytes currently allocated (0 when the allocator is not installed).
#[must_use]
pub fn live_bytes() -> usize {
    LIVE.load(Relaxed)
}

/// Peak live bytes since process start or the last
/// [`reset_high_water`] (0 when the allocator is not installed).
#[must_use]
pub fn high_water_bytes() -> usize {
    HIGH_WATER.load(Relaxed)
}

/// Total successful allocations (including growing reallocs) since
/// process start (0 when the allocator is not installed).
#[must_use]
pub fn allocation_count() -> usize {
    ALLOCS.load(Relaxed)
}

/// Rebases the high-water mark to the current live size, so the next
/// [`high_water_bytes`] reading measures only the region after this
/// call. Returns the live size it rebased to.
pub fn reset_high_water() -> usize {
    let live = LIVE.load(Relaxed);
    HIGH_WATER.store(live, Relaxed);
    live
}

#[cfg(test)]
mod tests {
    // The allocator is deliberately NOT installed in this crate's own
    // test binary (installing a process-global allocator from a unit
    // test would tax every other test), so the readers are exercised in
    // their uninstalled, all-zeros mode here and for real in the bench
    // crate's release-gated throughput test.
    use super::*;

    #[test]
    fn uninstalled_readers_are_inert_zeros() {
        assert_eq!(live_bytes(), 0);
        assert_eq!(high_water_bytes(), 0);
        assert_eq!(allocation_count(), 0);
        assert_eq!(reset_high_water(), 0);
        assert_eq!(high_water_bytes(), 0);
    }
}
