//! Deterministic, serializable snapshots of a [`crate::Registry`].
//!
//! A [`MetricsSnapshot`] is plain data ordered by `BTreeMap`, so two
//! snapshots of the same campaign state render to byte-identical JSON
//! regardless of thread count or registration order. The same schema
//! backs `sweep --metrics-out`, the `BENCH_*.json` perf-trajectory
//! files and the sharded-campaign merge path, and it parses back via
//! [`MetricsSnapshot::from_json`] — no serde in the workspace.

use std::collections::BTreeMap;

use crate::json::Json;
use crate::metrics::HistogramSnapshot;

/// Per-cell cost breakdown for one sweep cell: wall time, per-phase
/// timings and deterministic work counters (numeric factorizations,
/// symbolic analyses). Cached cells report their lookup cost and
/// `cached: true`.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct CellMetrics {
    /// Canonical cell index in the sweep matrix.
    pub index: u64,
    /// The cell's content-addressed cache key (hex).
    pub key: String,
    /// Whether the result came from the cache instead of a simulation.
    pub cached: bool,
    /// End-to-end wall time for producing this cell's result, µs.
    pub wall_us: u64,
    /// Phase name → µs (e.g. `setup`, `simulate`, `cache_lookup`).
    pub phases: BTreeMap<String, u64>,
    /// Deterministic per-cell work counters (e.g. `factor_numeric`).
    pub counters: BTreeMap<String, u64>,
}

impl CellMetrics {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("cell".to_owned(), Json::u64(self.index)),
            ("key".to_owned(), Json::Str(self.key.clone())),
            ("cached".to_owned(), Json::Bool(self.cached)),
            ("wall_us".to_owned(), Json::u64(self.wall_us)),
            ("phases".to_owned(), u64_map_to_json(&self.phases)),
            ("counters".to_owned(), u64_map_to_json(&self.counters)),
        ])
    }

    fn from_json(v: &Json) -> Result<Self, String> {
        Ok(Self {
            index: field_u64(v, "cell")?,
            key: field_str(v, "key")?,
            cached: v.get("cached").and_then(Json::as_bool).unwrap_or(false),
            wall_us: field_u64(v, "wall_us")?,
            phases: u64_map_from_json(v.get("phases"), "phases")?,
            counters: u64_map_from_json(v.get("counters"), "counters")?,
        })
    }
}

/// A complete, deterministic copy of a registry's state.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct MetricsSnapshot {
    /// Free-form context: sweep name, shard, engine version, …
    pub meta: BTreeMap<String, String>,
    pub counters: BTreeMap<String, u64>,
    pub gauges: BTreeMap<String, f64>,
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// Per-cell breakdowns, sorted by canonical cell index.
    pub cells: Vec<CellMetrics>,
}

impl MetricsSnapshot {
    /// Folds `other` into `self`: counters add, gauges take `other`'s
    /// value, histograms merge bucket-wise, cells append and re-sort,
    /// meta entries from `other` win.
    ///
    /// # Errors
    ///
    /// Returns a message when two same-named histograms disagree on
    /// bucket edges.
    pub fn merge(&mut self, other: &Self) -> Result<(), String> {
        for (k, v) in &other.meta {
            self.meta.insert(k.clone(), v.clone());
        }
        for (k, v) in &other.counters {
            let slot = self.counters.entry(k.clone()).or_insert(0);
            *slot = slot.saturating_add(*v);
        }
        for (k, v) in &other.gauges {
            self.gauges.insert(k.clone(), *v);
        }
        for (k, h) in &other.histograms {
            match self.histograms.get_mut(k) {
                Some(mine) => mine.merge(h).map_err(|e| format!("{k}: {e}"))?,
                None => {
                    self.histograms.insert(k.clone(), h.clone());
                }
            }
        }
        self.cells.extend(other.cells.iter().cloned());
        self.cells.sort_by(|a, b| a.index.cmp(&b.index).then_with(|| a.key.cmp(&b.key)));
        Ok(())
    }

    /// Renders the snapshot as indented JSON (deterministic: BTree
    /// ordering everywhere, shortest-round-trip floats).
    #[must_use]
    pub fn to_json(&self) -> String {
        let meta =
            self.meta.iter().map(|(k, v)| (k.clone(), Json::Str(v.clone()))).collect::<Vec<_>>();
        let counters =
            self.counters.iter().map(|(k, v)| (k.clone(), Json::u64(*v))).collect::<Vec<_>>();
        let gauges =
            self.gauges.iter().map(|(k, v)| (k.clone(), Json::f64(*v))).collect::<Vec<_>>();
        let histograms =
            self.histograms.iter().map(|(k, h)| (k.clone(), hist_to_json(h))).collect::<Vec<_>>();
        let cells = self.cells.iter().map(CellMetrics::to_json).collect();
        Json::Obj(vec![
            ("meta".to_owned(), Json::Obj(meta)),
            ("counters".to_owned(), Json::Obj(counters)),
            ("gauges".to_owned(), Json::Obj(gauges)),
            ("histograms".to_owned(), Json::Obj(histograms)),
            ("cells".to_owned(), Json::Arr(cells)),
        ])
        .pretty()
    }

    /// Parses a snapshot previously produced by [`Self::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a message for malformed JSON or a shape that does not
    /// match the snapshot schema.
    pub fn from_json(src: &str) -> Result<Self, String> {
        let doc = Json::parse(src)?;
        let mut snap = Self::default();
        if let Some(fields) = doc.get("meta").and_then(Json::as_obj) {
            for (k, v) in fields {
                let s = v.as_str().ok_or_else(|| format!("meta.{k}: expected string"))?;
                snap.meta.insert(k.clone(), s.to_owned());
            }
        }
        if let Some(fields) = doc.get("counters").and_then(Json::as_obj) {
            for (k, v) in fields {
                let n = v.as_u64().ok_or_else(|| format!("counters.{k}: expected u64"))?;
                snap.counters.insert(k.clone(), n);
            }
        }
        if let Some(fields) = doc.get("gauges").and_then(Json::as_obj) {
            for (k, v) in fields {
                let n = v.as_f64().ok_or_else(|| format!("gauges.{k}: expected number"))?;
                snap.gauges.insert(k.clone(), n);
            }
        }
        if let Some(fields) = doc.get("histograms").and_then(Json::as_obj) {
            for (k, v) in fields {
                snap.histograms
                    .insert(k.clone(), hist_from_json(v).map_err(|e| format!("{k}: {e}"))?);
            }
        }
        if let Some(items) = doc.get("cells").and_then(Json::as_arr) {
            for item in items {
                snap.cells.push(CellMetrics::from_json(item)?);
            }
        }
        Ok(snap)
    }
}

fn u64_map_to_json(map: &BTreeMap<String, u64>) -> Json {
    Json::Obj(map.iter().map(|(k, v)| (k.clone(), Json::u64(*v))).collect())
}

fn u64_map_from_json(v: Option<&Json>, what: &str) -> Result<BTreeMap<String, u64>, String> {
    let mut out = BTreeMap::new();
    if let Some(fields) = v.and_then(Json::as_obj) {
        for (k, v) in fields {
            let n = v.as_u64().ok_or_else(|| format!("{what}.{k}: expected u64"))?;
            out.insert(k.clone(), n);
        }
    }
    Ok(out)
}

fn hist_to_json(h: &HistogramSnapshot) -> Json {
    let nums = |vals: &[u64]| Json::Arr(vals.iter().map(|&v| Json::u64(v)).collect());
    Json::Obj(vec![
        ("edges".to_owned(), nums(&h.edges)),
        ("buckets".to_owned(), nums(&h.buckets)),
        ("count".to_owned(), Json::u64(h.count)),
        ("sum".to_owned(), Json::u64(h.sum)),
        ("min".to_owned(), Json::u64(h.min)),
        ("max".to_owned(), Json::u64(h.max)),
    ])
}

fn hist_from_json(v: &Json) -> Result<HistogramSnapshot, String> {
    let nums = |key: &str| -> Result<Vec<u64>, String> {
        v.get(key)
            .and_then(Json::as_arr)
            .ok_or_else(|| format!("{key}: expected array"))?
            .iter()
            .map(|n| n.as_u64().ok_or_else(|| format!("{key}: expected u64 entries")))
            .collect()
    };
    let h = HistogramSnapshot {
        edges: nums("edges")?,
        buckets: nums("buckets")?,
        count: field_u64(v, "count")?,
        sum: field_u64(v, "sum")?,
        min: field_u64(v, "min")?,
        max: field_u64(v, "max")?,
    };
    if h.buckets.len() != h.edges.len() + 1 {
        return Err(format!(
            "{} edges need {} buckets, got {}",
            h.edges.len(),
            h.edges.len() + 1,
            h.buckets.len()
        ));
    }
    Ok(h)
}

fn field_u64(v: &Json, key: &str) -> Result<u64, String> {
    v.get(key).and_then(Json::as_u64).ok_or_else(|| format!("{key}: expected u64"))
}

fn field_str(v: &Json, key: &str) -> Result<String, String> {
    Ok(v.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| format!("{key}: expected string"))?
        .to_owned())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Histogram;

    fn sample() -> MetricsSnapshot {
        let h = Histogram::with_edges(&[10, 100]);
        h.record(7);
        h.record(70);
        h.record(700);
        let mut snap = MetricsSnapshot::default();
        snap.meta.insert("sweep".to_owned(), "ti\"ny".to_owned());
        snap.counters.insert("sweep.cache_hits".to_owned(), 3);
        snap.counters.insert("huge".to_owned(), u64::MAX);
        snap.gauges.insert("expand_us".to_owned(), 12.25);
        snap.histograms.insert("cell.wall_us".to_owned(), h.snapshot());
        snap.cells.push(CellMetrics {
            index: 1,
            key: "00ff00ff00ff00ff".to_owned(),
            cached: true,
            wall_us: 42,
            phases: BTreeMap::from([("cache_lookup".to_owned(), 42)]),
            counters: BTreeMap::new(),
        });
        snap
    }

    #[test]
    fn json_round_trips_exactly() {
        let snap = sample();
        let text = snap.to_json();
        assert_eq!(MetricsSnapshot::from_json(&text).unwrap(), snap);
        // Deterministic: rendering twice is byte-identical.
        assert_eq!(snap.to_json(), text);
    }

    #[test]
    fn empty_snapshot_round_trips() {
        let text = MetricsSnapshot::default().to_json();
        assert_eq!(MetricsSnapshot::from_json(&text).unwrap(), MetricsSnapshot::default());
    }

    #[test]
    fn merge_adds_counters_and_histograms() {
        let mut a = sample();
        let b = sample();
        a.merge(&b).unwrap();
        assert_eq!(a.counters["sweep.cache_hits"], 6);
        assert_eq!(a.histograms["cell.wall_us"].count, 6);
        assert_eq!(a.cells.len(), 2);
        // Mismatched edges refuse to merge.
        let mut c = sample();
        let other = Histogram::with_edges(&[1]).snapshot();
        let mut d = MetricsSnapshot::default();
        d.histograms.insert("cell.wall_us".to_owned(), other);
        assert!(c.merge(&d).is_err());
    }

    #[test]
    fn malformed_shapes_are_rejected() {
        assert!(MetricsSnapshot::from_json("[]").is_ok()); // no sections: empty snapshot
        assert!(MetricsSnapshot::from_json("{\"counters\":{\"a\":-1}}").is_err());
        assert!(MetricsSnapshot::from_json("{\"meta\":{\"a\":1}}").is_err());
        assert!(MetricsSnapshot::from_json("{\"histograms\":{\"h\":{\"edges\":[1],\"buckets\":[1],\"count\":1,\"sum\":1,\"min\":1,\"max\":1}}}").is_err());
        assert!(MetricsSnapshot::from_json("not json").is_err());
    }
}
