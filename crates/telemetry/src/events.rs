//! JSONL cell-lifecycle event stream (`sweep --trace-out events.jsonl`).
//!
//! One JSON object per line, written atomically under a mutex so lines
//! never interleave even with many workers. Every event carries the
//! shard, the canonical cell index, the cell's cache key and a
//! monotonic timestamp (`t_us`, microseconds since the sink was
//! created); `cell_finish` adds the cell's wall time and whether it was
//! served from the cache. Within one cell the runner emits
//! `cell_start` strictly before `cell_finish`/`cell_panic` from the
//! same thread, so per-cell ordering is guaranteed by write order.

use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::Mutex;
use std::time::Instant;

use crate::json::Json;
use crate::span::elapsed_us;

/// One cell-lifecycle event. String fields are borrowed — events are
/// built on the emitting thread and serialized immediately.
#[derive(Clone, Copy, Debug)]
pub enum Event<'a> {
    /// A worker picked the cell up for simulation.
    CellStart { shard: &'a str, cell: usize, key: &'a str },
    /// The cell's result was served from the cache store.
    CacheHit { shard: &'a str, cell: usize, key: &'a str, lookup_us: u64 },
    /// The cell produced a result (simulated, or decoded from cache).
    CellFinish { shard: &'a str, cell: usize, key: &'a str, wall_us: u64, cached: bool },
    /// The cell's simulation panicked.
    CellPanic { shard: &'a str, cell: usize, key: &'a str, cause: &'a str },
}

impl Event<'_> {
    /// The `ev` tag written on the line.
    #[must_use]
    pub fn tag(&self) -> &'static str {
        match self {
            Event::CellStart { .. } => "cell_start",
            Event::CacheHit { .. } => "cache_hit",
            Event::CellFinish { .. } => "cell_finish",
            Event::CellPanic { .. } => "cell_panic",
        }
    }

    fn to_json(self, t_us: u64) -> Json {
        let (shard, cell, key) = match self {
            Event::CellStart { shard, cell, key }
            | Event::CacheHit { shard, cell, key, .. }
            | Event::CellFinish { shard, cell, key, .. }
            | Event::CellPanic { shard, cell, key, .. } => (shard, cell, key),
        };
        let mut fields = vec![
            ("ev".to_owned(), Json::Str(self.tag().to_owned())),
            ("t_us".to_owned(), Json::u64(t_us)),
            ("shard".to_owned(), Json::Str(shard.to_owned())),
            ("cell".to_owned(), Json::u64(cell as u64)),
            ("key".to_owned(), Json::Str(key.to_owned())),
        ];
        match self {
            Event::CellStart { .. } => {}
            Event::CacheHit { lookup_us, .. } => {
                fields.push(("lookup_us".to_owned(), Json::u64(lookup_us)));
            }
            Event::CellFinish { wall_us, cached, .. } => {
                fields.push(("wall_us".to_owned(), Json::u64(wall_us)));
                fields.push(("cached".to_owned(), Json::Bool(cached)));
            }
            Event::CellPanic { cause, .. } => {
                fields.push(("cause".to_owned(), Json::Str(cause.to_owned())));
            }
        }
        Json::Obj(fields)
    }
}

/// A line-buffered JSONL sink, shareable across worker threads.
pub struct EventSink {
    out: Mutex<Box<dyn Write + Send>>,
    start: Instant,
}

impl EventSink {
    /// A sink appending to a fresh file at `path`.
    ///
    /// # Errors
    ///
    /// Propagates file-creation errors.
    pub fn to_path(path: &Path) -> io::Result<Self> {
        Ok(Self::to_writer(Box::new(BufWriter::new(File::create(path)?))))
    }

    /// A sink over any writer (tests pass a shared buffer).
    #[must_use]
    pub fn to_writer(out: Box<dyn Write + Send>) -> Self {
        Self { out: Mutex::new(out), start: Instant::now() }
    }

    /// Writes one event as a single flushed line. I/O errors are
    /// swallowed: telemetry must never fail a campaign.
    pub fn emit(&self, event: &Event<'_>) {
        let line = event.to_json(elapsed_us(self.start)).compact();
        let mut out = self.out.lock().expect("lock poisoned");
        let _ = writeln!(out, "{line}");
        let _ = out.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    /// A `Write` handle into a shared byte buffer.
    #[derive(Clone, Default)]
    pub(crate) struct SharedBuf(pub Arc<Mutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.0.lock().expect("lock poisoned").extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn lines_are_valid_json_in_emit_order() {
        let buf = SharedBuf::default();
        let sink = EventSink::to_writer(Box::new(buf.clone()));
        sink.emit(&Event::CellStart { shard: "0/1", cell: 3, key: "aa" });
        sink.emit(&Event::CacheHit { shard: "0/1", cell: 4, key: "bb", lookup_us: 7 });
        sink.emit(&Event::CellFinish {
            shard: "0/1",
            cell: 3,
            key: "aa",
            wall_us: 10,
            cached: false,
        });
        sink.emit(&Event::CellPanic { shard: "0/1", cell: 5, key: "cc", cause: "boom \"q\"" });
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        let lines: Vec<_> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        let docs: Vec<Json> = lines.iter().map(|l| Json::parse(l).unwrap()).collect();
        let tags: Vec<_> =
            docs.iter().map(|d| d.get("ev").unwrap().as_str().unwrap().to_owned()).collect();
        assert_eq!(tags, ["cell_start", "cache_hit", "cell_finish", "cell_panic"]);
        assert_eq!(docs[0].get("cell").unwrap().as_u64(), Some(3));
        assert_eq!(docs[1].get("lookup_us").unwrap().as_u64(), Some(7));
        assert_eq!(docs[2].get("cached").unwrap().as_bool(), Some(false));
        assert_eq!(docs[3].get("cause").unwrap().as_str(), Some("boom \"q\""));
        // Timestamps are monotone non-decreasing in write order.
        let ts: Vec<_> = docs.iter().map(|d| d.get("t_us").unwrap().as_u64().unwrap()).collect();
        assert!(ts.windows(2).all(|w| w[0] <= w[1]), "{ts:?}");
    }
}
