//! `therm3d_telemetry`: observability primitives for the therm3d
//! DATE 2009 reproduction — a lock-light metrics registry, a span-timing
//! API for the simulation hot path, and sinks that stream campaign
//! progress without touching stdout.
//!
//! The crate exists to open up the sweep engine's black box (PRs 1–5
//! built a distributed, cache-backed campaign runner whose only runtime
//! signal was a single stderr cache line) while preserving the two
//! invariants the rest of the workspace is built on:
//!
//! 1. **stdout is sacred.** Every sink here writes to stderr or to a
//!    sidecar file the caller names explicitly. Report CSV/JSON on
//!    stdout stays byte-identical whether telemetry is on or off — CI
//!    diffs the two.
//! 2. **Disabled means free.** A disabled [`Registry`] turns
//!    [`Span::enter`] into one relaxed atomic load: no clock read, no
//!    allocation, nothing in the engine's allocation-free tick loop.
//!
//! The pieces:
//!
//! - [`Counter`] / [`Gauge`] / [`Histogram`] — atomic metric
//!   primitives; histograms use fixed microsecond bucket edges so
//!   snapshots from different processes merge exactly.
//! - [`Registry`] — a name-keyed store of those primitives. Reads take
//!   a shared lock only on first lookup per name; updates are pure
//!   atomics. [`global()`] is the process-wide instance used by
//!   in-engine spans; embedders (the sweep runner) create private
//!   registries so parallel runs do not interleave.
//! - [`Span`] — monotonic-clock scope timing
//!   (`Span::enter("factor_numeric")`), nestable, recorded into a
//!   histogram on drop.
//! - [`MetricsSnapshot`] — a deterministic (BTree-ordered) snapshot
//!   with hand-rolled JSON serialization *and* parsing, so snapshots
//!   round-trip without serde and trajectory files (`BENCH_*.json`,
//!   `--metrics-out`) share one schema.
//! - [`EventSink`] — a JSONL stream of per-cell lifecycle events
//!   (start / cache-hit / finish / panic) for `--trace-out`.
//! - [`Progress`] — a throttled, single-line stderr progress reporter
//!   for `--progress` (cells done/total, cells/s, hit rate, ETA).
//! - [`CountingAllocator`] — an opt-in, per-binary counting global
//!   allocator (live / high-water bytes, allocation counts) backing the
//!   throughput-mode memory gauges and the bench alloc-profile
//!   tripwire; its readers are inert zeros when not installed.

pub mod alloc;
pub mod events;
pub mod json;
pub mod metrics;
pub mod progress;
pub mod registry;
pub mod snapshot;
pub mod span;

pub use alloc::CountingAllocator;
pub use events::{Event, EventSink};
pub use json::Json;
pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, DEFAULT_US_EDGES};
pub use progress::Progress;
pub use registry::{global, Registry};
pub use snapshot::{CellMetrics, MetricsSnapshot};
pub use span::{elapsed_us, Span};
