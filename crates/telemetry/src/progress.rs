//! Throttled single-line progress reporting (`sweep --progress`).
//!
//! The reporter rewrites one stderr line (`\r`, no newline until
//! [`Progress::finish`]) with cells done/total, throughput, cache hit
//! rate and an ETA. Redraws are bounded: a draw happens on the first
//! completed cell, when `min_interval` has elapsed since the previous
//! draw, and once at the end — a 10k-cell campaign does not emit 10k
//! lines. Counters are atomics, so workers call
//! [`Progress::cell_done`] straight from the hot loop; the draw itself
//! takes a mutex only when the throttle window is open.

use std::io::{self, Write};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Shared progress state; see the module docs.
pub struct Progress {
    out: Mutex<Box<dyn Write + Send>>,
    min_interval: Duration,
    start: Instant,
    total: AtomicUsize,
    threads: AtomicUsize,
    done: AtomicUsize,
    hits: AtomicUsize,
    draws: AtomicUsize,
    last_draw: Mutex<Option<Instant>>,
}

impl Progress {
    /// A reporter on stderr redrawing at most five times per second.
    #[must_use]
    pub fn stderr() -> Self {
        Self::with_writer(Box::new(io::stderr()), Duration::from_millis(200))
    }

    /// A reporter over any writer with an explicit redraw throttle
    /// (tests use a shared buffer and an hour-long interval).
    #[must_use]
    pub fn with_writer(out: Box<dyn Write + Send>, min_interval: Duration) -> Self {
        Self {
            out: Mutex::new(out),
            min_interval,
            start: Instant::now(),
            total: AtomicUsize::new(0),
            threads: AtomicUsize::new(1),
            done: AtomicUsize::new(0),
            hits: AtomicUsize::new(0),
            draws: AtomicUsize::new(0),
            last_draw: Mutex::new(None),
        }
    }

    /// Announces the campaign size and worker count before the first
    /// cell completes.
    pub fn begin(&self, total: usize, threads: usize) {
        self.total.store(total, Ordering::Relaxed);
        self.threads.store(threads.max(1), Ordering::Relaxed);
    }

    /// Records one completed cell (cached or simulated) and redraws if
    /// the throttle window is open.
    pub fn cell_done(&self, cached: bool) {
        self.done.fetch_add(1, Ordering::Relaxed);
        if cached {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        self.maybe_draw(false);
    }

    /// Forces a final draw and terminates the line.
    pub fn finish(&self) {
        self.maybe_draw(true);
        let mut out = self.out.lock().expect("lock poisoned");
        let _ = writeln!(out);
        let _ = out.flush();
    }

    /// How many times the line has been (re)drawn — the throttling
    /// tests read this.
    #[must_use]
    pub fn redraw_count(&self) -> usize {
        self.draws.load(Ordering::Relaxed)
    }

    fn maybe_draw(&self, force: bool) {
        let mut last = self.last_draw.lock().expect("lock poisoned");
        let now = Instant::now();
        let due = match *last {
            None => true,
            Some(prev) => now.duration_since(prev) >= self.min_interval,
        };
        if !(force || due) {
            return;
        }
        *last = Some(now);
        self.draws.fetch_add(1, Ordering::Relaxed);
        let line = self.render();
        let mut out = self.out.lock().expect("lock poisoned");
        let _ = write!(out, "\r{line}");
        let _ = out.flush();
    }

    #[allow(clippy::cast_precision_loss)]
    fn render(&self) -> String {
        let total = self.total.load(Ordering::Relaxed);
        let done = self.done.load(Ordering::Relaxed);
        let hits = self.hits.load(Ordering::Relaxed);
        let threads = self.threads.load(Ordering::Relaxed).max(1);
        let elapsed = self.start.elapsed().as_secs_f64().max(1e-9);
        let rate = done as f64 / elapsed;
        let hit_rate = if done == 0 { 0.0 } else { 100.0 * hits as f64 / done as f64 };
        let pct = if total == 0 { 100.0 } else { 100.0 * done as f64 / total as f64 };
        let eta = if done == 0 || done >= total {
            "0s".to_owned()
        } else {
            format_secs((total - done) as f64 / rate.max(1e-9))
        };
        // Trailing spaces wipe leftovers from a previously longer line.
        format!(
            "sweep: {done}/{total} cells {pct:5.1}%  {rate:.2} cells/s ({:.2}/thread x{threads})  hits {hit_rate:.1}%  ETA {eta}   ",
            rate / threads as f64
        )
    }
}

fn format_secs(s: f64) -> String {
    if s >= 3600.0 {
        format!("{:.0}h{:02.0}m", (s / 3600.0).floor(), (s % 3600.0) / 60.0)
    } else if s >= 60.0 {
        format!("{:.0}m{:02.0}s", (s / 60.0).floor(), s % 60.0)
    } else {
        format!("{s:.0}s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[derive(Clone, Default)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.0.lock().expect("lock poisoned").extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn redraws_are_throttled_to_the_interval() {
        let buf = SharedBuf::default();
        let p = Progress::with_writer(Box::new(buf.clone()), Duration::from_secs(3600));
        p.begin(1000, 4);
        for _ in 0..500 {
            p.cell_done(false);
        }
        // First completion draws; the next 499 fall inside the window.
        assert_eq!(p.redraw_count(), 1);
        p.finish();
        assert_eq!(p.redraw_count(), 2);
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        assert!(text.contains("500/1000 cells"), "{text}");
        assert!(text.ends_with('\n'), "finish terminates the line");
    }

    #[test]
    fn unthrottled_reporter_draws_every_cell() {
        let buf = SharedBuf::default();
        let p = Progress::with_writer(Box::new(buf.clone()), Duration::ZERO);
        p.begin(3, 1);
        for _ in 0..3 {
            p.cell_done(true);
        }
        assert_eq!(p.redraw_count(), 3);
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        assert!(text.contains("hits 100.0%"), "{text}");
        assert!(text.contains("ETA 0s"), "{text}");
    }

    #[test]
    fn eta_formatting_covers_magnitudes() {
        assert_eq!(format_secs(12.4), "12s");
        assert_eq!(format_secs(75.0), "1m15s");
        assert_eq!(format_secs(3723.0), "1h02m");
    }
}
