//! The name-keyed metrics registry.
//!
//! A [`Registry`] maps metric names to shared atomic primitives. The
//! maps are behind an `RwLock`, but the lock is only taken to *resolve*
//! a name — callers hold `Arc`s to the primitives and update them with
//! plain relaxed atomics, so steady-state recording never contends.
//!
//! Two usage modes coexist:
//!
//! - [`global()`] — one process-wide registry, **disabled by default**,
//!   used by spans buried inside the thermal solver and the engine tick
//!   loop that cannot thread a handle through their call chain. While
//!   disabled, [`crate::Span::enter`] is a single relaxed load.
//! - Private instances ([`Registry::new`]) — the sweep runner gives
//!   each run its own registry so parallel runs (and parallel tests)
//!   never interleave counts, and so snapshots stay deterministic.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};

use crate::metrics::{Counter, Gauge, Histogram};
use crate::snapshot::{CellMetrics, MetricsSnapshot};

/// A registry of named counters, gauges, histograms, per-cell records
/// and free-form metadata.
#[derive(Debug, Default)]
pub struct Registry {
    enabled: AtomicBool,
    counters: RwLock<BTreeMap<String, Arc<Counter>>>,
    gauges: RwLock<BTreeMap<String, Arc<Gauge>>>,
    histograms: RwLock<BTreeMap<String, Arc<Histogram>>>,
    meta: Mutex<BTreeMap<String, String>>,
    cells: Mutex<Vec<CellMetrics>>,
}

impl Registry {
    #[must_use]
    pub fn new(enabled: bool) -> Self {
        let r = Self::default();
        r.enabled.store(enabled, Ordering::Relaxed);
        r
    }

    /// Whether spans and recorders attached to this registry should do
    /// any work at all.
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled, Ordering::Relaxed);
    }

    /// The counter named `name`, created on first use.
    #[must_use]
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        if let Some(c) = self.counters.read().expect("lock poisoned").get(name) {
            return Arc::clone(c);
        }
        let mut map = self.counters.write().expect("lock poisoned");
        Arc::clone(map.entry(name.to_owned()).or_default())
    }

    /// The gauge named `name`, created on first use.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        if let Some(g) = self.gauges.read().expect("lock poisoned").get(name) {
            return Arc::clone(g);
        }
        let mut map = self.gauges.write().expect("lock poisoned");
        Arc::clone(map.entry(name.to_owned()).or_default())
    }

    /// The microsecond histogram named `name`, created on first use
    /// with the default 1-2-5 edge ladder.
    #[must_use]
    pub fn histogram_us(&self, name: &str) -> Arc<Histogram> {
        if let Some(h) = self.histograms.read().expect("lock poisoned").get(name) {
            return Arc::clone(h);
        }
        let mut map = self.histograms.write().expect("lock poisoned");
        Arc::clone(map.entry(name.to_owned()).or_insert_with(|| Arc::new(Histogram::new_us())))
    }

    /// Sets a metadata entry (sweep name, shard, engine version, …).
    pub fn set_meta(&self, key: &str, value: &str) {
        self.meta.lock().expect("lock poisoned").insert(key.to_owned(), value.to_owned());
    }

    /// Appends one per-cell cost record.
    pub fn record_cell(&self, cell: CellMetrics) {
        self.cells.lock().expect("lock poisoned").push(cell);
    }

    /// A deterministic snapshot: BTree-ordered maps, cells sorted by
    /// canonical index.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut snap = MetricsSnapshot {
            meta: self.meta.lock().expect("lock poisoned").clone(),
            ..MetricsSnapshot::default()
        };
        for (name, c) in self.counters.read().expect("lock poisoned").iter() {
            snap.counters.insert(name.clone(), c.get());
        }
        for (name, g) in self.gauges.read().expect("lock poisoned").iter() {
            snap.gauges.insert(name.clone(), g.get());
        }
        for (name, h) in self.histograms.read().expect("lock poisoned").iter() {
            snap.histograms.insert(name.clone(), h.snapshot());
        }
        snap.cells = self.cells.lock().expect("lock poisoned").clone();
        snap.cells.sort_by(|a, b| a.index.cmp(&b.index).then_with(|| a.key.cmp(&b.key)));
        snap
    }
}

/// The process-wide registry used by in-engine spans. Disabled until
/// an embedder (the CLI's telemetry flags, a bench binary) turns it on.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::default)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_resolve_to_shared_instances() {
        let r = Registry::new(true);
        r.counter("a").inc();
        r.counter("a").add(2);
        r.counter("b").inc();
        assert_eq!(r.counter("a").get(), 3);
        assert_eq!(r.counter("b").get(), 1);
        r.gauge("g").set(2.5);
        assert_eq!(r.gauge("g").get(), 2.5);
        r.histogram_us("h").record(10);
        assert_eq!(r.histogram_us("h").count(), 1);
    }

    #[test]
    fn snapshot_is_ordered_and_complete() {
        let r = Registry::new(true);
        r.counter("z").inc();
        r.counter("a").inc();
        r.set_meta("sweep", "demo");
        r.record_cell(CellMetrics { index: 2, ..CellMetrics::default() });
        r.record_cell(CellMetrics { index: 0, ..CellMetrics::default() });
        let snap = r.snapshot();
        assert_eq!(snap.counters.keys().collect::<Vec<_>>(), ["a", "z"]);
        assert_eq!(snap.meta["sweep"], "demo");
        assert_eq!(snap.cells.iter().map(|c| c.index).collect::<Vec<_>>(), [0, 2]);
    }

    #[test]
    fn global_registry_starts_disabled() {
        // Other tests may enable it; only assert it exists and that a
        // fresh private registry honors the constructor flag.
        let _ = global();
        assert!(!Registry::new(false).enabled());
        assert!(Registry::new(true).enabled());
    }
}
