//! Property test: a [`MetricsSnapshot`] survives its own JSON —
//! `from_json(to_json(s)) == s` for arbitrary metric names (including
//! quotes and non-ASCII), full-range `u64` counters, histograms built
//! from random samples, and per-cell records. This is the contract the
//! `--metrics-out` files, `BENCH_*.json` trajectories and any future
//! snapshot-merging coordinator rely on.

use std::collections::BTreeMap;

use proptest::prelude::*;
use therm3d_telemetry::{CellMetrics, Histogram, MetricsSnapshot};

/// Metric-name alphabet exercising the string escaper.
const NAMES: [&str; 8] = [
    "cell.wall_us",
    "sweep cache hits",
    "q\"uote",
    "back\\slash",
    "tabs\tand\nnewlines",
    "uni·códe µs",
    "",
    "sweep.cells_total",
];

fn name(i: usize) -> String {
    // Suffix keeps generated names unique per slot so map sizes are
    // predictable even when two slots draw the same alphabet entry.
    format!("{}#{i}", NAMES[i % NAMES.len()])
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn metrics_snapshot_json_round_trips(
        counters in prop::collection::vec((0usize..8, 0u64..u64::MAX), 0..6),
        gauges in prop::collection::vec((0usize..8, -1_000_000i64..1_000_000, 1i64..1_000), 0..6),
        samples in prop::collection::vec(0u64..20_000_000, 0..50),
        cells in prop::collection::vec((0u64..64, 0u64..10_000_000, 0u64..2), 0..8),
        meta_n in 0usize..4,
    ) {
        let mut snap = MetricsSnapshot::default();
        for i in 0..meta_n {
            snap.meta.insert(name(i), NAMES[(i + 3) % NAMES.len()].to_owned());
        }
        for (slot, (i, v)) in counters.iter().enumerate() {
            snap.counters.insert(name(i + slot), *v);
        }
        for (slot, (i, num, den)) in gauges.iter().enumerate() {
            #[allow(clippy::cast_precision_loss)]
            snap.gauges.insert(name(i + slot), *num as f64 / *den as f64);
        }
        let hist = Histogram::with_edges(&[10, 1_000, 100_000]);
        for s in &samples {
            hist.record(*s);
        }
        snap.histograms.insert("cell.wall_us".to_owned(), hist.snapshot());
        snap.histograms.insert("empty".to_owned(), Histogram::new_us().snapshot());
        for (slot, (index, wall_us, cached)) in cells.iter().enumerate() {
            snap.cells.push(CellMetrics {
                index: *index,
                key: format!("{:016x}", index.wrapping_mul(0x9e37_79b9_7f4a_7c15)),
                cached: *cached == 1,
                wall_us: *wall_us,
                phases: BTreeMap::from([("simulate".to_owned(), *wall_us / 2)]),
                counters: BTreeMap::from([("factor_numeric".to_owned(), slot as u64)]),
            });
        }
        // Snapshots keep cells index-sorted; normalize the way
        // Registry::snapshot does before comparing.
        snap.cells.sort_by(|a, b| a.index.cmp(&b.index).then_with(|| a.key.cmp(&b.key)));

        let text = snap.to_json();
        let back = MetricsSnapshot::from_json(&text)
            .unwrap_or_else(|e| panic!("parse failed: {e}\n{text}"));
        prop_assert_eq!(&back, &snap);
        // Serialization is deterministic.
        prop_assert_eq!(back.to_json(), text);
    }
}
