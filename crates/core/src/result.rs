//! Aggregated results of one simulation run.

use std::fmt;

use therm3d_floorplan::Experiment;
use therm3d_metrics::PerformanceStats;

/// Everything a figure needs from one (experiment, policy, workload) run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunResult {
    /// Policy name (figure label).
    pub policy: String,
    /// The simulated 3D system.
    pub experiment: Experiment,
    /// Simulated wall time, seconds.
    pub duration_s: f64,
    /// % of core-time above the hot-spot threshold (Figures 3–4).
    pub hotspot_pct: f64,
    /// % of intervals with a per-layer gradient above threshold (Fig. 5).
    pub gradient_pct: f64,
    /// % of sliding-window ΔT samples above threshold (Figure 6).
    pub cycle_pct: f64,
    /// Worst vertical (inter-layer) gradient seen, °C (Section V-C's
    /// TSV-stress check; the paper reports "a few degrees only").
    pub vertical_peak_c: f64,
    /// Mean vertical gradient, °C.
    pub vertical_mean_c: f64,
    /// Hottest core temperature seen, °C.
    pub peak_temp_c: f64,
    /// Job completion statistics.
    pub perf: PerformanceStats,
    /// Total energy, joules.
    pub energy_j: f64,
    /// Mean chip power, W.
    pub mean_power_w: f64,
    /// Total job migrations performed.
    pub migrations: u64,
    /// Jobs left unfinished when the run ended (should be 0 unless the
    /// drain cap was hit).
    pub unfinished: usize,
}

impl RunResult {
    /// Throughput-normalized performance against a baseline run
    /// (1.0 = same speed; Figure 3's right axis).
    #[must_use]
    pub fn normalized_performance_vs(&self, baseline: &RunResult) -> f64 {
        self.perf.normalized_vs(&baseline.perf)
    }

    /// A fixed-width table row (used by the figure binaries).
    #[must_use]
    pub fn table_row(&self) -> String {
        format!(
            "{:<18} {:>8.2} {:>8.2} {:>8.2} {:>8.1} {:>9.3} {:>10.0} {:>7}",
            self.policy,
            self.hotspot_pct,
            self.gradient_pct,
            self.cycle_pct,
            self.peak_temp_c,
            self.perf.mean_turnaround_s,
            self.energy_j,
            self.migrations,
        )
    }

    /// The header matching [`table_row`](Self::table_row).
    #[must_use]
    pub fn table_header() -> String {
        format!(
            "{:<18} {:>8} {:>8} {:>8} {:>8} {:>9} {:>10} {:>7}",
            "policy", "hot%", "grad%", "cycle%", "peakC", "turn_s", "energy_J", "migr"
        )
    }
}

impl fmt::Display for RunResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} on {}: hot {:.2}%, grad {:.2}%, cycles {:.2}%, peak {:.1} °C, \
             {} jobs done (mean {:.3} s), {:.0} J",
            self.policy,
            self.experiment,
            self.hotspot_pct,
            self.gradient_pct,
            self.cycle_pct,
            self.peak_temp_c,
            self.perf.completed,
            self.perf.mean_turnaround_s,
            self.energy_j
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(policy: &str, mean_turn: f64) -> RunResult {
        RunResult {
            policy: policy.to_owned(),
            experiment: Experiment::Exp1,
            duration_s: 60.0,
            hotspot_pct: 10.0,
            gradient_pct: 5.0,
            cycle_pct: 2.0,
            vertical_peak_c: 4.0,
            vertical_mean_c: 2.0,
            peak_temp_c: 92.0,
            perf: PerformanceStats::from_turnarounds(&[mean_turn]),
            energy_j: 3600.0,
            mean_power_w: 60.0,
            migrations: 4,
            unfinished: 0,
        }
    }

    #[test]
    fn normalized_performance() {
        let base = result("Default", 1.0);
        let slow = result("CGate", 1.25);
        assert!((slow.normalized_performance_vs(&base) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn table_row_alignment() {
        let r = result("Adapt3D", 0.5);
        assert_eq!(
            RunResult::table_header().split_whitespace().count(),
            r.table_row().split_whitespace().count()
        );
    }

    #[test]
    fn display_mentions_key_fields() {
        let r = result("Migr", 0.5);
        let s = r.to_string();
        assert!(s.contains("Migr") && s.contains("EXP-1"));
    }
}
