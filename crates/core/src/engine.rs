//! The coupled simulation engine: workload → policy → scheduler → power
//! (with leakage feedback) → thermal → sensors → policy, at the paper's
//! 100 ms sampling interval (Section IV-D).

use therm3d_floorplan::{CoreId, Stack3d};
use therm3d_metrics::{
    max_layer_gradient, max_vertical_gradient, EnergyMeter, HotSpotTracker, PerformanceStats,
    SpatialGradientTracker, ThermalCycleTracker, VerticalGradientTracker,
};
use therm3d_policies::{MultiQueue, Observation, Policy, QueueHint};
use therm3d_power::{CorePowerInput, PowerModel};
use therm3d_telemetry::Span;
use therm3d_thermal::{FactorShare, ThermalModel};
use therm3d_workload::{JobSource, JobTrace, SourceCursor};

use crate::config::SimConfig;
use crate::result::RunResult;

/// The integrated 3D-DTM simulator.
///
/// Owns the die stack, thermal and power models, the multi-queue
/// scheduler and the policy under evaluation; [`run`](Self::run) drives
/// them tick by tick over a workload trace and aggregates the paper's
/// metrics.
///
/// # Examples
///
/// ```
/// use therm3d::{SimConfig, Simulator};
/// use therm3d_floorplan::Experiment;
/// use therm3d_policies::PolicyKind;
/// use therm3d_workload::{Benchmark, TraceConfig};
///
/// let cfg = SimConfig::fast(Experiment::Exp1);
/// let stack = Experiment::Exp1.stack();
/// let policy = PolicyKind::Adapt3d.build(&stack, 7);
/// let trace = TraceConfig::new(Benchmark::Gzip, 8, 5.0).generate();
/// let mut sim = Simulator::new(cfg, policy);
/// let result = sim.run(&trace, 5.0);
/// assert!(result.perf.completed > 0);
/// ```
pub struct Simulator {
    config: SimConfig,
    stack: Stack3d,
    thermal: ThermalModel,
    power: PowerModel,
    queues: MultiQueue,
    policy: Box<dyn Policy>,
    /// Global block index of each core, by `CoreId`.
    core_sites: Vec<usize>,
    /// Layer of each block (for the gradient metric).
    layer_of_block: Vec<usize>,
    /// Vertically adjacent overlapping block pairs (for the TSV-stress
    /// vertical-gradient metric of Section V-C).
    vertical_pairs: Vec<(usize, usize)>,
    /// Per-core utilization over the previous tick.
    utilization: Vec<f64>,
    /// Per-core continuous idle time, seconds.
    idle_time: Vec<f64>,
    /// Current simulated time, seconds.
    now_s: f64,
    /// Sensor imperfection state (noise stream).
    sensor: crate::sensor::SensorModel,
}

impl Simulator {
    /// Builds the simulator and initializes the thermal state to the
    /// steady state of an idle system (the paper initializes HotSpot with
    /// steady-state values).
    ///
    /// # Panics
    ///
    /// Panics if `config` is inconsistent (see [`SimConfig::validate`]).
    #[must_use]
    pub fn new(config: SimConfig, policy: Box<dyn Policy>) -> Self {
        Self::with_factor_share(config, policy, None)
    }

    /// Like [`new`](Self::new), but attaches a [`FactorShare`] to the
    /// thermal model before any factorization happens, so cells of a
    /// sweep that resolve to the same thermal model reuse one symbolic
    /// analysis and one factor set. Results are bit-identical with or
    /// without a share; only the redundant work disappears.
    ///
    /// # Panics
    ///
    /// Panics if `config` is inconsistent (see [`SimConfig::validate`]).
    #[must_use]
    pub fn with_factor_share(
        config: SimConfig,
        policy: Box<dyn Policy>,
        share: Option<FactorShare>,
    ) -> Self {
        config.validate();
        let stack = config.experiment.stack_with_order(config.scenario.stack_order);
        // The scenario owns the interlayer unless the caller explicitly
        // overrode `thermal.interlayer`; a custom material combined with
        // a non-default TSV variant is rejected by `validate` above, so
        // the two sources can never silently fight.
        let thermal_cfg = if config.thermal.interlayer
            == therm3d_thermal::ThermalConfig::paper_default().interlayer
        {
            config.thermal.clone().with_tsv(config.scenario.tsv)
        } else {
            config.thermal.clone()
        };
        let mut thermal = ThermalModel::new(&stack, thermal_cfg);
        if let Some(share) = share {
            thermal.set_factor_share(share);
        }
        let power = PowerModel::new(&stack, config.power.clone(), config.vf.clone());
        let n_cores = stack.num_cores();
        let core_sites: Vec<usize> = stack.core_ids().map(|c| stack.core_block_index(c)).collect();
        let layer_of_block: Vec<usize> = stack.sites().iter().map(|s| s.layer).collect();
        let vertical_pairs = stack.vertical_adjacency();

        // Idle-system steady state with leakage feedback: fixed-point
        // iterate power(T) → steady(T) a few times.
        let idle = vec![CorePowerInput::idle(); n_cores];
        let mut temps = vec![config.thermal.ambient_c; stack.num_blocks()];
        for _ in 0..3 {
            let powers = power.block_powers(&idle, &temps);
            temps = thermal.initialize_steady_state(&powers);
        }

        Self {
            // Per-job completion records are never read back by the
            // engine — turnaround statistics come from the queue's online
            // fold — so the log is suppressed and memory stays O(1) in
            // the number of jobs executed.
            queues: MultiQueue::new(n_cores).without_completion_log(),
            utilization: vec![0.0; n_cores],
            idle_time: vec![0.0; n_cores],
            now_s: 0.0,
            sensor: config.scenario.sensor_model(),
            config,
            stack,
            thermal,
            power,
            core_sites,
            layer_of_block,
            vertical_pairs,
            policy,
        }
    }

    /// The die stack under simulation.
    #[must_use]
    pub fn stack(&self) -> &Stack3d {
        &self.stack
    }

    /// Current per-core temperatures, °C.
    #[must_use]
    pub fn core_temps_c(&self) -> Vec<f64> {
        self.core_sites.iter().map(|&s| self.thermal.block_temperature_c(s)).collect()
    }

    /// Current simulated time, seconds.
    #[must_use]
    pub fn now_s(&self) -> f64 {
        self.now_s
    }

    /// Numeric LDLᵀ factorizations performed by the thermal model so
    /// far — surfaced so sweeps can report the "factor once per
    /// (model, h)" guarantee per cell instead of only test-asserting it.
    #[must_use]
    pub fn factorization_count(&self) -> usize {
        self.thermal.factorization_count()
    }

    /// Symbolic sparse analyses performed by the thermal model so far.
    #[must_use]
    pub fn symbolic_analysis_count(&self) -> usize {
        self.thermal.symbolic_analysis_count()
    }

    /// The policy under evaluation.
    #[must_use]
    pub fn policy_name(&self) -> &str {
        self.policy.name()
    }

    /// Runs the trace for `duration_s` of simulated time, then drains
    /// remaining jobs (up to the configured drain cap), returning the
    /// aggregated metrics.
    pub fn run(&mut self, trace: &JobTrace, duration_s: f64) -> RunResult {
        self.run_with_observer(trace, duration_s, |_| {})
    }

    /// Like [`run`](Self::run), but invokes `observer` once per sampling
    /// interval with the post-step state — the hook used by the examples
    /// to record temperature histories and by the reliability analyses.
    pub fn run_with_observer(
        &mut self,
        trace: &JobTrace,
        duration_s: f64,
        observer: impl FnMut(&TickSample<'_>),
    ) -> RunResult {
        self.run_source_with_observer(trace.cursor(), duration_s, observer)
    }

    /// Runs any [`JobSource`] — a materialized trace's cursor or a lazy
    /// streaming generator — for `duration_s` of simulated time. With a
    /// streaming source the engine holds at most one job of lookahead,
    /// so memory is O(1) in the simulated duration; results are
    /// bit-identical to the materialized path over the same jobs.
    pub fn run_source(&mut self, source: impl JobSource, duration_s: f64) -> RunResult {
        self.run_source_with_observer(source, duration_s, |_| {})
    }

    /// Like [`run_source`](Self::run_source), with a per-tick observer.
    pub fn run_source_with_observer(
        &mut self,
        source: impl JobSource,
        duration_s: f64,
        mut observer: impl FnMut(&TickSample<'_>),
    ) -> RunResult {
        assert!(duration_s > 0.0, "duration must be positive");
        let tick = self.config.tick_s;
        let n_cores = self.stack.num_cores();

        let mut hotspots = HotSpotTracker::new(self.config.hotspot_threshold_c);
        let mut gradients = SpatialGradientTracker::new(self.config.gradient_threshold_c);
        let mut cycles = ThermalCycleTracker::new(
            self.config.cycle_threshold_c,
            self.config.cycle_window,
            n_cores,
        );
        let mut vertical = VerticalGradientTracker::new(self.config.vertical_threshold_c);
        let mut energy = EnergyMeter::new();

        let mut cursor = SourceCursor::new(source);
        let deadline = duration_s + self.config.drain_max_s;

        // Persistent per-tick buffers: the loop below runs ten times per
        // simulated second for minutes of simulated time, so the hot
        // path reuses these instead of allocating each tick.
        let mut temps_c: Vec<f64> = Vec::new();
        let mut core_true: Vec<f64> = Vec::with_capacity(n_cores);
        let mut core_temps: Vec<f64> = Vec::with_capacity(n_cores);
        let mut commands: Vec<therm3d_policies::CoreCommand> = Vec::with_capacity(n_cores);
        let mut queue_len: Vec<usize> = Vec::with_capacity(n_cores);
        let mut queued_work: Vec<f64> = Vec::with_capacity(n_cores);
        let mut inputs: Vec<CorePowerInput> = Vec::with_capacity(n_cores);
        let mut temps_after: Vec<f64> = Vec::new();
        let mut core_after: Vec<f64> = Vec::with_capacity(n_cores);
        let mut vf_index: Vec<usize> = Vec::with_capacity(n_cores);
        let mut asleep: Vec<bool> = Vec::with_capacity(n_cores);

        // lint: region(alloc-free: engine-tick)
        while self.now_s < duration_s
            || (self.queues.in_flight() > 0 && self.now_s < deadline)
            || (cursor.has_pending() && self.now_s < deadline)
        {
            // Inert (one relaxed load, no allocation) unless the global
            // telemetry registry was enabled by an embedder, so the
            // alloc-free property of this loop holds in the default path.
            let _tick_span = Span::enter("engine.tick_us");
            // 1. Sensor readings + scheduler statistics for the policy.
            // The policy sees *sensor* readings; metrics use true temps.
            self.thermal.block_temperatures_c_into(&mut temps_c);
            core_true.clear();
            core_true.extend(self.core_sites.iter().map(|&s| temps_c[s]));
            self.sensor.read_into(&core_true, &mut core_temps);
            queue_len.clear();
            queue_len.extend((0..n_cores).map(|c| self.queues.queue_len(CoreId(c))));
            queued_work.clear();
            queued_work.extend((0..n_cores).map(|c| self.queues.queued_work_s(CoreId(c))));

            // 2. Control decision from the policy.
            let decision = {
                let obs = Observation {
                    now_s: self.now_s,
                    tick_s: tick,
                    core_temps_c: &core_temps,
                    utilization: &self.utilization,
                    queue_len: &queue_len,
                    queued_work_s: &queued_work,
                    idle_time_s: &self.idle_time,
                };
                self.policy.control(&obs)
            };
            commands.clear();
            if decision.commands.is_empty() {
                commands.resize(n_cores, therm3d_policies::CoreCommand::run());
            } else {
                commands.extend_from_slice(&decision.commands);
            }
            assert_eq!(commands.len(), n_cores, "policy returned wrong command count");

            // 3. Migrations requested by the policy.
            for &(from, to) in &decision.migrations {
                self.queues.migrate(from, to);
            }

            // 4. Job arrivals, placed one at a time with fresh queue state
            // (each enqueue changes the statistics, so the buffers are
            // refilled per job, still without reallocating; `Job` is
            // `Copy`, and the cursor holds at most one job of lookahead
            // whatever the source).
            while let Some(job) = cursor.next_until(self.now_s) {
                queued_work.clear();
                queued_work.extend((0..n_cores).map(|c| self.queues.queued_work_s(CoreId(c))));
                queue_len.clear();
                queue_len.extend((0..n_cores).map(|c| self.queues.queue_len(CoreId(c))));
                let target = {
                    let obs = Observation {
                        now_s: self.now_s,
                        tick_s: tick,
                        core_temps_c: &core_temps,
                        utilization: &self.utilization,
                        queue_len: &queue_len,
                        queued_work_s: &queued_work,
                        idle_time_s: &self.idle_time,
                    };
                    let hint = QueueHint { queued_work_s: &queued_work, queue_len: &queue_len };
                    self.policy.place_job(&job, &obs, &hint)
                };
                assert!(target.0 < n_cores, "policy placed a job on core {target}");
                self.queues.enqueue(target, job);
            }

            // 5. Wake-on-work: a sleeping core with queued jobs wakes this
            // tick (sleep-state entry/exit latencies are far below the
            // 100 ms sampling interval).
            for (c, cmd) in commands.iter_mut().enumerate() {
                if cmd.asleep && self.queues.queue_len(CoreId(c)) > 0 {
                    cmd.asleep = false;
                }
            }

            // 6. Execute each core for the tick.
            inputs.clear();
            for (c, &cmd) in commands.iter().enumerate() {
                let freq = if cmd.asleep || cmd.gated {
                    0.0
                } else {
                    self.config.vf.level(cmd.vf_index).freq_scale
                };
                let busy = self.queues.execute(CoreId(c), tick, freq, self.now_s);
                let util = (busy / tick).clamp(0.0, 1.0);
                self.utilization[c] = util;
                if self.queues.queue_len(CoreId(c)) == 0 && busy == 0.0 {
                    self.idle_time[c] += tick;
                } else {
                    self.idle_time[c] = 0.0;
                }
                inputs.push(CorePowerInput {
                    utilization: util,
                    vf_index: cmd.vf_index,
                    gated: cmd.gated,
                    asleep: cmd.asleep,
                    memory_intensity: self.queues.memory_intensity(CoreId(c)),
                });
            }

            // 7. Power with leakage feedback at current temperatures, then
            // advance the thermal solution.
            let powers = self.power.block_powers(&inputs, &temps_c);
            energy.add(powers.iter().sum(), tick);
            self.thermal.set_block_powers(&powers);
            self.thermal.step(tick);

            // 8. Metrics on the post-step temperature field.
            self.thermal.block_temperatures_c_into(&mut temps_after);
            core_after.clear();
            core_after.extend(self.core_sites.iter().map(|&s| temps_after[s]));
            hotspots.record(&core_after);
            gradients.record(max_layer_gradient(&temps_after, &self.layer_of_block));
            vertical.record(max_vertical_gradient(&temps_after, &self.vertical_pairs));
            cycles.record(&core_after);

            vf_index.clear();
            vf_index.extend(commands.iter().map(|c| c.vf_index));
            asleep.clear();
            asleep.extend(commands.iter().map(|c| c.asleep));
            observer(&TickSample {
                now_s: self.now_s,
                tick_s: tick,
                core_temps_c: &core_after,
                block_temps_c: &temps_after,
                layer_of_block: &self.layer_of_block,
                utilization: &self.utilization,
                chip_power_w: powers.iter().sum(),
                vf_index: &vf_index,
                asleep: &asleep,
            });

            self.now_s += tick;
        }
        // lint: end-region

        RunResult {
            policy: self.policy.name().to_owned(),
            experiment: self.config.experiment,
            duration_s: self.now_s,
            hotspot_pct: hotspots.percent(),
            gradient_pct: gradients.percent(),
            cycle_pct: cycles.percent(),
            vertical_peak_c: vertical.peak_c(),
            vertical_mean_c: vertical.mean_c(),
            peak_temp_c: hotspots.peak_c(),
            perf: PerformanceStats::from_accumulated(
                self.queues.completed_count(),
                self.queues.turnaround_total_s(),
                self.queues.turnaround_max_s(),
            ),
            energy_j: energy.joules(),
            mean_power_w: energy.mean_power_w(),
            migrations: self.queues.migration_count(),
            unfinished: self.queues.in_flight(),
        }
    }
}

/// Post-step state of one sampling interval, handed to
/// [`Simulator::run_with_observer`] observers.
///
/// All slices are indexed by core id except `block_temps_c` and
/// `layer_of_block`, which cover every block in the stack.
#[derive(Debug, Clone)]
pub struct TickSample<'a> {
    /// Simulation time at the start of the tick, seconds.
    pub now_s: f64,
    /// Tick length, seconds.
    pub tick_s: f64,
    /// Per-core temperatures after the thermal step, °C.
    pub core_temps_c: &'a [f64],
    /// All block temperatures after the thermal step, °C.
    pub block_temps_c: &'a [f64],
    /// The layer each block sits on (parallel to `block_temps_c`).
    pub layer_of_block: &'a [usize],
    /// Per-core utilization over the tick, `[0, 1]`.
    pub utilization: &'a [f64],
    /// Total chip power over the tick, W.
    pub chip_power_w: f64,
    /// V/f level index each core ran at.
    pub vf_index: &'a [usize],
    /// Whether each core slept through the tick.
    pub asleep: &'a [bool],
}

#[cfg(test)]
mod tests {
    use super::*;
    use therm3d_floorplan::Experiment;
    use therm3d_policies::PolicyKind;
    use therm3d_workload::{Benchmark, TraceConfig};

    fn run_policy(kind: PolicyKind, bench: Benchmark, secs: f64) -> RunResult {
        let cfg = SimConfig::fast(Experiment::Exp1);
        let stack = Experiment::Exp1.stack();
        let policy = kind.build(&stack, 0xBEEF);
        let trace = TraceConfig::new(bench, 8, secs).with_seed(3).generate();
        Simulator::new(cfg, policy).run(&trace, secs)
    }

    #[test]
    fn default_policy_completes_all_jobs() {
        let r = run_policy(PolicyKind::Default, Benchmark::Gzip, 10.0);
        assert_eq!(r.unfinished, 0, "light load must drain fully");
        assert!(r.perf.completed > 0);
        assert!(r.energy_j > 0.0);
        assert!(r.peak_temp_c > 45.0);
    }

    #[test]
    fn deterministic_runs() {
        let a = run_policy(PolicyKind::Adapt3d, Benchmark::Gcc, 6.0);
        let b = run_policy(PolicyKind::Adapt3d, Benchmark::Gcc, 6.0);
        assert_eq!(a, b);
    }

    #[test]
    fn streamed_source_is_bit_identical_to_materialized() {
        let cfg = TraceConfig::new(Benchmark::WebMed, 8, 8.0).with_seed(11);
        let stack = Experiment::Exp1.stack();
        let trace = cfg.generate();
        let materialized = Simulator::new(
            SimConfig::fast(Experiment::Exp1),
            PolicyKind::Adapt3d.build(&stack, 0xBEEF),
        )
        .run(&trace, 8.0);
        let streamed = Simulator::new(
            SimConfig::fast(Experiment::Exp1),
            PolicyKind::Adapt3d.build(&stack, 0xBEEF),
        )
        .run_source(cfg.stream(), 8.0);
        assert_eq!(materialized, streamed);
    }

    #[test]
    fn busy_system_heats_up() {
        let r = run_policy(PolicyKind::Default, Benchmark::WebHigh, 15.0);
        assert!(r.peak_temp_c > 60.0, "heavy load heats the chip: {:.1}", r.peak_temp_c);
    }

    #[test]
    fn every_policy_runs_on_every_experiment() {
        for exp in Experiment::ALL {
            let stack = exp.stack();
            for kind in [PolicyKind::Default, PolicyKind::Adapt3d, PolicyKind::Adapt3dDvfsTt] {
                let cfg = SimConfig::fast(exp);
                let policy = kind.build(&stack, 1);
                let trace = TraceConfig::new(Benchmark::Gcc, stack.num_cores(), 3.0).generate();
                let r = Simulator::new(cfg, policy).run(&trace, 3.0);
                assert!(r.duration_s >= 3.0, "{exp}/{kind}");
            }
        }
    }

    #[test]
    fn dpm_reduces_energy_on_light_load() {
        let cfg = || SimConfig::fast(Experiment::Exp1);
        let stack = Experiment::Exp1.stack();
        let trace = TraceConfig::new(Benchmark::MPlayer, 8, 20.0).with_seed(5).generate();
        let base = Simulator::new(cfg(), PolicyKind::Default.build_with_dpm(&stack, 1, false))
            .run(&trace, 20.0);
        let dpm = Simulator::new(cfg(), PolicyKind::Default.build_with_dpm(&stack, 1, true))
            .run(&trace, 20.0);
        assert!(
            dpm.energy_j < base.energy_j * 0.95,
            "DPM {:.0} J vs base {:.0} J",
            dpm.energy_j,
            base.energy_j
        );
    }

    #[test]
    fn migration_policy_migrates_under_load() {
        let r = run_policy(PolicyKind::Migr, Benchmark::WebHigh, 15.0);
        // Whether migrations trigger depends on crossing 85 °C; at minimum
        // the run must be well-formed.
        assert!(r.perf.completed > 0);
    }

    #[test]
    fn metrics_are_percentages() {
        let r = run_policy(PolicyKind::Default, Benchmark::WebMed, 8.0);
        for v in [r.hotspot_pct, r.gradient_pct, r.cycle_pct] {
            assert!((0.0..=100.0).contains(&v), "{v}");
        }
    }
}
