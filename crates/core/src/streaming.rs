//! Bounded-memory recording for long simulations: every paper metric
//! folded online from the observer hook, plus an optional fixed-size
//! ring-buffer tail for trace output — nothing here grows with the
//! simulated duration, so a cell can simulate hours or weeks of load at
//! O(1) memory.

use therm3d_floorplan::Stack3d;
use therm3d_metrics::{
    max_layer_gradient, max_vertical_gradient, EnergyMeter, HotSpotTracker, SpatialGradientTracker,
    ThermalCycleTracker, VerticalGradientTracker,
};

use crate::config::SimConfig;
use crate::engine::TickSample;

/// A bounded-memory tick recorder: the streaming counterpart of the
/// facade's `TempHistory`, folding hot-spot / gradient / cycling /
/// vertical / energy metrics online and keeping only a fixed-capacity
/// tail of recent samples for trace output.
///
/// Construct it with the same [`SimConfig`] the simulator runs under so
/// the thresholds match, feed it every [`TickSample`] from an observer,
/// and read the aggregates afterwards; with the same inputs the
/// percentages and peaks are bit-identical to the engine's own
/// [`RunResult`](crate::RunResult) fields (both fold the same trackers
/// in the same order).
///
/// # Examples
///
/// ```
/// use therm3d::{SimConfig, Simulator, StreamingRecorder};
/// use therm3d_floorplan::Experiment;
/// use therm3d_policies::PolicyKind;
/// use therm3d_workload::{Benchmark, TraceConfig};
///
/// let cfg = SimConfig::fast(Experiment::Exp1);
/// let stack = Experiment::Exp1.stack();
/// let mut rec = StreamingRecorder::new(&cfg, &stack).with_tail(16);
/// let policy = PolicyKind::Default.build(&stack, 1);
/// let cfg2 = cfg.clone();
/// let mut sim = Simulator::new(cfg2, policy);
/// let trace = TraceConfig::new(Benchmark::Gzip, 8, 3.0).generate();
/// let result = sim.run_with_observer(&trace, 3.0, |s| rec.record(s));
/// assert_eq!(rec.peak_c(), result.peak_temp_c);
/// assert!(rec.tail_len() <= 16);
/// ```
#[derive(Debug, Clone)]
pub struct StreamingRecorder {
    n_cores: usize,
    hotspots: HotSpotTracker,
    gradients: SpatialGradientTracker,
    cycles: ThermalCycleTracker,
    vertical: VerticalGradientTracker,
    vertical_pairs: Vec<(usize, usize)>,
    energy: EnergyMeter,
    samples: u64,
    temp_sum_c: f64,
    peak_spread_c: f64,
    /// Ring-buffer tail, chronological modulo `tail_head`.
    tail_cap: usize,
    tail_times_s: Vec<f64>,
    /// Row-major `[slot][core]`, `tail_cap × n_cores` once warm.
    tail_temps_c: Vec<f64>,
    tail_power_w: Vec<f64>,
    tail_head: usize,
    tail_len: usize,
}

impl StreamingRecorder {
    /// A recorder matching `config`'s metric thresholds over `stack`'s
    /// geometry, with no tail (aggregates only).
    #[must_use]
    pub fn new(config: &SimConfig, stack: &Stack3d) -> Self {
        let n_cores = stack.num_cores();
        Self {
            n_cores,
            hotspots: HotSpotTracker::new(config.hotspot_threshold_c),
            gradients: SpatialGradientTracker::new(config.gradient_threshold_c),
            cycles: ThermalCycleTracker::new(
                config.cycle_threshold_c,
                config.cycle_window,
                n_cores,
            ),
            vertical: VerticalGradientTracker::new(config.vertical_threshold_c),
            vertical_pairs: stack.vertical_adjacency(),
            energy: EnergyMeter::new(),
            samples: 0,
            temp_sum_c: 0.0,
            peak_spread_c: 0.0,
            tail_cap: 0,
            tail_times_s: Vec::new(),
            tail_temps_c: Vec::new(),
            tail_power_w: Vec::new(),
            tail_head: 0,
            tail_len: 0,
        }
    }

    /// Keeps the last `capacity` samples in a pre-allocated ring buffer
    /// (capacity 0 disables the tail). The buffers are sized here, once;
    /// recording never allocates again.
    #[must_use]
    pub fn with_tail(mut self, capacity: usize) -> Self {
        self.tail_cap = capacity;
        self.tail_times_s = vec![0.0; capacity];
        self.tail_temps_c = vec![0.0; capacity * self.n_cores];
        self.tail_power_w = vec![0.0; capacity];
        self.tail_head = 0;
        self.tail_len = 0;
        self
    }

    /// Folds one tick sample into the aggregates (and the tail ring, if
    /// enabled).
    ///
    /// # Panics
    ///
    /// Panics if the sample's core count differs from the stack's.
    // lint: region(alloc-free: recorder-record)
    pub fn record(&mut self, sample: &TickSample<'_>) {
        assert_eq!(sample.core_temps_c.len(), self.n_cores, "core count mismatch");
        self.energy.add(sample.chip_power_w, sample.tick_s);
        self.hotspots.record(sample.core_temps_c);
        self.gradients.record(max_layer_gradient(sample.block_temps_c, sample.layer_of_block));
        self.vertical.record(max_vertical_gradient(sample.block_temps_c, &self.vertical_pairs));
        self.cycles.record(sample.core_temps_c);

        let mut hi = f64::NEG_INFINITY;
        let mut lo = f64::INFINITY;
        for &t in sample.core_temps_c {
            self.temp_sum_c += t;
            hi = hi.max(t);
            lo = lo.min(t);
        }
        self.peak_spread_c = self.peak_spread_c.max(hi - lo);
        self.samples += 1;

        if self.tail_cap > 0 {
            let slot = self.tail_head;
            self.tail_times_s[slot] = sample.now_s;
            self.tail_temps_c[slot * self.n_cores..(slot + 1) * self.n_cores]
                .copy_from_slice(sample.core_temps_c);
            self.tail_power_w[slot] = sample.chip_power_w;
            self.tail_head = (self.tail_head + 1) % self.tail_cap;
            self.tail_len = (self.tail_len + 1).min(self.tail_cap);
        }
    }
    // lint: end-region

    /// Number of cores per sample.
    #[must_use]
    pub fn n_cores(&self) -> usize {
        self.n_cores
    }

    /// Ticks folded so far.
    #[must_use]
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Hottest core temperature ever recorded, °C (matches
    /// `RunResult::peak_temp_c`).
    #[must_use]
    pub fn peak_c(&self) -> f64 {
        self.hotspots.peak_c()
    }

    /// Mean of all recorded core temperatures, °C (NaN when empty).
    #[must_use]
    pub fn mean_c(&self) -> f64 {
        self.temp_sum_c / (self.samples * self.n_cores as u64) as f64
    }

    /// Largest core-to-core spread within a single sample, °C.
    #[must_use]
    pub fn peak_spread_c(&self) -> f64 {
        self.peak_spread_c
    }

    /// Percent of samples with a core above the hot-spot threshold.
    #[must_use]
    pub fn hotspot_pct(&self) -> f64 {
        self.hotspots.percent()
    }

    /// Percent of samples with a spatial gradient above threshold.
    #[must_use]
    pub fn gradient_pct(&self) -> f64 {
        self.gradients.percent()
    }

    /// Percent of windows with a thermal cycle above threshold.
    #[must_use]
    pub fn cycle_pct(&self) -> f64 {
        self.cycles.percent()
    }

    /// Peak vertical (inter-layer) gradient, °C.
    #[must_use]
    pub fn vertical_peak_c(&self) -> f64 {
        self.vertical.peak_c()
    }

    /// Mean vertical gradient, °C.
    #[must_use]
    pub fn vertical_mean_c(&self) -> f64 {
        self.vertical.mean_c()
    }

    /// Total energy folded, J.
    #[must_use]
    pub fn energy_j(&self) -> f64 {
        self.energy.joules()
    }

    /// Mean chip power, W.
    #[must_use]
    pub fn mean_power_w(&self) -> f64 {
        self.energy.mean_power_w()
    }

    /// Samples currently held in the tail (≤ the configured capacity).
    #[must_use]
    pub fn tail_len(&self) -> usize {
        self.tail_len
    }

    /// Tail capacity configured via [`with_tail`](Self::with_tail).
    #[must_use]
    pub fn tail_capacity(&self) -> usize {
        self.tail_cap
    }

    /// The `i`-th oldest retained sample as
    /// `(time_s, core_temps_c, power_w)`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= tail_len()`.
    #[must_use]
    pub fn tail_sample(&self, i: usize) -> (f64, &[f64], f64) {
        assert!(i < self.tail_len, "tail sample {i} out of range");
        // Once the ring wraps, the oldest sample sits at `tail_head`.
        let slot =
            if self.tail_len < self.tail_cap { i } else { (self.tail_head + i) % self.tail_cap };
        (
            self.tail_times_s[slot],
            &self.tail_temps_c[slot * self.n_cores..(slot + 1) * self.n_cores],
            self.tail_power_w[slot],
        )
    }

    /// Serializes the retained tail as CSV in chronological order, in
    /// the facade `TempHistory` format
    /// (`time_s,core0,...,coreN,power_w`, 3 decimals).
    #[must_use]
    pub fn tail_csv(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("time_s");
        for c in 0..self.n_cores {
            let _ = write!(out, ",core{c}");
        }
        out.push_str(",power_w\n");
        for i in 0..self.tail_len {
            let (time_s, temps, power_w) = self.tail_sample(i);
            let _ = write!(out, "{time_s:.3}");
            for &t in temps {
                let _ = write!(out, ",{t:.3}");
            }
            let _ = writeln!(out, ",{power_w:.3}");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Simulator;
    use therm3d_floorplan::Experiment;
    use therm3d_policies::PolicyKind;
    use therm3d_workload::{Benchmark, TraceConfig};

    fn run_recorded(tail: usize, secs: f64) -> (crate::RunResult, StreamingRecorder) {
        let exp = Experiment::Exp1;
        let cfg = SimConfig::fast(exp);
        let stack = exp.stack();
        let mut rec = StreamingRecorder::new(&cfg, &stack).with_tail(tail);
        let policy = PolicyKind::Adapt3d.build(&stack, 0xBEEF);
        let trace = TraceConfig::new(Benchmark::WebMed, 8, secs).with_seed(3).generate();
        let mut sim = Simulator::new(cfg, policy);
        let result = sim.run_with_observer(&trace, secs, |s| rec.record(s));
        (result, rec)
    }

    #[test]
    fn aggregates_are_bit_identical_to_run_result() {
        let (result, rec) = run_recorded(8, 6.0);
        assert_eq!(rec.hotspot_pct(), result.hotspot_pct);
        assert_eq!(rec.gradient_pct(), result.gradient_pct);
        assert_eq!(rec.cycle_pct(), result.cycle_pct);
        assert_eq!(rec.vertical_peak_c(), result.vertical_peak_c);
        assert_eq!(rec.vertical_mean_c(), result.vertical_mean_c);
        assert_eq!(rec.peak_c(), result.peak_temp_c);
        assert_eq!(rec.energy_j(), result.energy_j);
        assert_eq!(rec.mean_power_w(), result.mean_power_w);
    }

    #[test]
    fn tail_keeps_only_the_most_recent_samples() {
        let (_result, rec) = run_recorded(5, 4.0);
        assert!(rec.samples() > 5, "run long enough to wrap the ring");
        assert_eq!(rec.tail_len(), 5);
        assert_eq!(rec.tail_capacity(), 5);
        // Chronological and contiguous at the tick period.
        let times: Vec<f64> = (0..5).map(|i| rec.tail_sample(i).0).collect();
        for w in times.windows(2) {
            assert!((w[1] - w[0] - 0.1).abs() < 1e-9, "ticks contiguous: {w:?}");
        }
        // The newest retained sample is the last tick of the run.
        let last = times[4];
        let expected_last = (rec.samples() - 1) as f64 * 0.1;
        assert!((last - expected_last).abs() < 1e-9, "{last} vs {expected_last}");
    }

    #[test]
    fn tail_csv_matches_temp_history_format() {
        let (_result, rec) = run_recorded(3, 2.0);
        let csv = rec.tail_csv();
        let header = csv.lines().next().unwrap();
        assert_eq!(header, "time_s,core0,core1,core2,core3,core4,core5,core6,core7,power_w");
        assert_eq!(csv.lines().count(), 1 + 3);
        for row in csv.lines().skip(1) {
            assert_eq!(row.split(',').count(), 10, "row width: {row}");
        }
    }

    #[test]
    fn zero_tail_recorder_still_folds() {
        let (result, rec) = run_recorded(0, 2.0);
        assert_eq!(rec.tail_len(), 0);
        assert_eq!(rec.tail_capacity(), 0);
        assert_eq!(rec.peak_c(), result.peak_temp_c);
        assert!(rec.samples() > 0);
        assert!(rec.mean_c() > 0.0);
        assert!(rec.peak_spread_c() >= 0.0);
        assert_eq!(rec.tail_csv().lines().count(), 1, "header only");
    }
}
