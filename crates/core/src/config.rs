//! End-to-end simulation configuration.

use therm3d_floorplan::{Experiment, StackOrder};
use therm3d_power::{PowerParams, VfTable};
use therm3d_thermal::{Integrator, ThermalConfig};

use crate::sensor::SensorModel;

/// Everything that defines one simulation run except the policy and the
/// workload trace.
///
/// # Examples
///
/// ```
/// use therm3d::SimConfig;
/// use therm3d_floorplan::{Experiment, StackOrder};
///
/// let cfg = SimConfig::paper_default(Experiment::Exp1);
/// assert_eq!(cfg.tick_s, 0.1);
/// assert_eq!(cfg.hotspot_threshold_c, 85.0);
/// ```
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Which 3D system to simulate.
    pub experiment: Experiment,
    /// Vertical orientation of the split configurations (which die bonds
    /// to the spreader); the default matches [`Experiment::stack`].
    pub stack_order: StackOrder,
    /// Thermal sampling / scheduling interval, seconds (paper: 100 ms).
    pub tick_s: f64,
    /// Thermal model parameters (Table II).
    pub thermal: ThermalConfig,
    /// Power model parameters (Section IV-B).
    pub power: PowerParams,
    /// DVFS table (three levels in the paper).
    pub vf: VfTable,
    /// Thermal-sensor imperfections applied to policy inputs (the paper
    /// assumes ideal sensors; see `sensor_noise_study`).
    pub sensor: SensorModel,
    /// Hot-spot threshold, °C (Figures 3–4: 85 °C).
    pub hotspot_threshold_c: f64,
    /// Spatial-gradient threshold, °C (Figure 5: 15 °C).
    pub gradient_threshold_c: f64,
    /// Thermal-cycle ΔT threshold, °C (Figure 6: 20 °C).
    pub cycle_threshold_c: f64,
    /// Vertical (inter-layer) gradient threshold, °C — the TSV-stress
    /// level Section V-C checks against. The paper observes vertical
    /// gradients stay "limited to a few degrees"; 10 °C marks the level
    /// where TSV thermo-mechanical stress would become a concern.
    pub vertical_threshold_c: f64,
    /// Sliding-window length for cycle detection, in ticks (100 ticks =
    /// 10 s at the default sampling interval — long enough to span DPM
    /// sleep/wake episodes and the die-level time constants where
    /// policy-controllable cycling lives, short enough not to be
    /// dominated by benchmark-segment macro swings no scheduler can
    /// remove).
    pub cycle_window: usize,
    /// Cap on post-trace drain time, seconds: the run ends when the trace
    /// is exhausted and the queues are empty, or after this much extra
    /// simulated time.
    pub drain_max_s: f64,
}

impl SimConfig {
    /// The paper's configuration for `experiment`: 100 ms sampling,
    /// Table II thermal parameters with an 8×8 grid, Section IV-B power
    /// parameters, 85/15/20 °C thresholds.
    #[must_use]
    pub fn paper_default(experiment: Experiment) -> Self {
        Self {
            experiment,
            stack_order: StackOrder::default(),
            tick_s: 0.1,
            thermal: ThermalConfig::paper_default(),
            power: PowerParams::paper_default(),
            vf: VfTable::paper_default(),
            sensor: SensorModel::ideal(),
            hotspot_threshold_c: 85.0,
            gradient_threshold_c: 15.0,
            cycle_threshold_c: 20.0,
            vertical_threshold_c: 10.0,
            cycle_window: 100,
            drain_max_s: 30.0,
        }
    }

    /// A reduced-resolution configuration (4×4 thermal grid) for fast
    /// tests; thresholds and physics are unchanged.
    #[must_use]
    pub fn fast(experiment: Experiment) -> Self {
        let mut cfg = Self::paper_default(experiment);
        cfg.thermal = cfg.thermal.with_grid(4, 4);
        cfg
    }

    /// Returns the configuration with a different thermal transient
    /// integrator (shorthand for setting `thermal.integrator`; the
    /// default is the pre-factored implicit scheme, with
    /// [`Integrator::ExplicitRk4`] retained as the golden reference).
    #[must_use]
    pub fn with_integrator(mut self, integrator: Integrator) -> Self {
        self.thermal = self.thermal.with_integrator(integrator);
        self
    }

    /// Validates cross-field consistency.
    ///
    /// # Panics
    ///
    /// Panics on inconsistent parameters (non-positive tick, zero cycle
    /// window, gradient/cycle thresholds that are not positive).
    pub fn validate(&self) {
        assert!(self.tick_s > 0.0 && self.tick_s.is_finite(), "tick must be positive");
        assert!(self.cycle_window > 0, "cycle window must be non-empty");
        assert!(self.hotspot_threshold_c > 0.0, "hot-spot threshold must be positive");
        assert!(self.gradient_threshold_c > 0.0, "gradient threshold must be positive");
        assert!(self.cycle_threshold_c > 0.0, "cycle threshold must be positive");
        assert!(self.vertical_threshold_c > 0.0, "vertical threshold must be positive");
        assert!(self.drain_max_s >= 0.0, "drain cap must be non-negative");
        self.thermal.validate();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_validates() {
        for exp in Experiment::ALL {
            SimConfig::paper_default(exp).validate();
            SimConfig::fast(exp).validate();
        }
    }

    #[test]
    fn fast_uses_smaller_grid() {
        let cfg = SimConfig::fast(Experiment::Exp1);
        assert_eq!((cfg.thermal.grid_rows, cfg.thermal.grid_cols), (4, 4));
        assert_eq!(cfg.hotspot_threshold_c, 85.0, "thresholds unchanged");
    }

    #[test]
    fn with_integrator_threads_through_to_the_thermal_config() {
        let cfg = SimConfig::fast(Experiment::Exp1).with_integrator(Integrator::ExplicitRk4);
        assert_eq!(cfg.thermal.integrator, Integrator::ExplicitRk4);
        assert_eq!(
            SimConfig::paper_default(Experiment::Exp1).thermal.integrator,
            Integrator::ImplicitCn,
            "the implicit solver is the workspace-wide default"
        );
    }

    #[test]
    #[should_panic(expected = "tick must be positive")]
    fn bad_tick_rejected() {
        let mut cfg = SimConfig::paper_default(Experiment::Exp1);
        cfg.tick_s = 0.0;
        cfg.validate();
    }
}
