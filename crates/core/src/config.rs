//! End-to-end simulation configuration.

use therm3d_floorplan::Experiment;
use therm3d_power::{PowerParams, VfTable};
use therm3d_thermal::{Integrator, ThermalConfig};

use crate::scenario::ScenarioConfig;

/// Default seed for the noisy sensor profiles when no sweep cell
/// supplies one (the paper-reproduction trace seed, reused).
pub const DEFAULT_SENSOR_SEED: u64 = 2009;

/// Everything that defines one simulation run except the policy and the
/// workload trace.
///
/// The physical/sensing scenario — stack orientation, TSV/interlayer
/// variant, sensor fidelity — lives in [`scenario`](Self::scenario);
/// the engine builds the die stack, the RC network's interlayer
/// material and the policy-facing sensor from it, so
/// `thermal.interlayer` is derived from `scenario.tsv` at simulator
/// construction.
///
/// # Examples
///
/// ```
/// use therm3d::SimConfig;
/// use therm3d_floorplan::Experiment;
///
/// let cfg = SimConfig::paper_default(Experiment::Exp1);
/// assert_eq!(cfg.tick_s, 0.1);
/// assert_eq!(cfg.hotspot_threshold_c, 85.0);
/// assert!(cfg.scenario.is_paper_default());
/// ```
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Which 3D system to simulate.
    pub experiment: Experiment,
    /// The physical/sensing scenario: stack orientation, TSV/interlayer
    /// variant and sensor-fidelity profile.
    pub scenario: ScenarioConfig,
    /// Thermal sampling / scheduling interval, seconds (paper: 100 ms).
    pub tick_s: f64,
    /// Thermal model parameters (Table II). The interlayer material is
    /// resolved from `scenario.tsv` when the simulator is built, unless
    /// it was explicitly customized via `ThermalConfig::with_interlayer`
    /// — combining a custom interlayer with a non-default `scenario.tsv`
    /// fails [`validate`](Self::validate).
    pub thermal: ThermalConfig,
    /// Power model parameters (Section IV-B).
    pub power: PowerParams,
    /// DVFS table (three levels in the paper).
    pub vf: VfTable,
    /// Hot-spot threshold, °C (Figures 3–4: 85 °C).
    pub hotspot_threshold_c: f64,
    /// Spatial-gradient threshold, °C (Figure 5: 15 °C).
    pub gradient_threshold_c: f64,
    /// Thermal-cycle ΔT threshold, °C (Figure 6: 20 °C).
    pub cycle_threshold_c: f64,
    /// Vertical (inter-layer) gradient threshold, °C — the TSV-stress
    /// level Section V-C checks against. The paper observes vertical
    /// gradients stay "limited to a few degrees"; 10 °C marks the level
    /// where TSV thermo-mechanical stress would become a concern.
    pub vertical_threshold_c: f64,
    /// Sliding-window length for cycle detection, in ticks (100 ticks =
    /// 10 s at the default sampling interval — long enough to span DPM
    /// sleep/wake episodes and the die-level time constants where
    /// policy-controllable cycling lives, short enough not to be
    /// dominated by benchmark-segment macro swings no scheduler can
    /// remove).
    pub cycle_window: usize,
    /// Cap on post-trace drain time, seconds: the run ends when the trace
    /// is exhausted and the queues are empty, or after this much extra
    /// simulated time.
    pub drain_max_s: f64,
}

impl SimConfig {
    /// The paper's configuration for `experiment`: 100 ms sampling,
    /// Table II thermal parameters with an 8×8 grid, Section IV-B power
    /// parameters, 85/15/20 °C thresholds.
    #[must_use]
    pub fn paper_default(experiment: Experiment) -> Self {
        Self {
            experiment,
            scenario: ScenarioConfig::paper_default(),
            tick_s: 0.1,
            thermal: ThermalConfig::paper_default(),
            power: PowerParams::paper_default(),
            vf: VfTable::paper_default(),
            hotspot_threshold_c: 85.0,
            gradient_threshold_c: 15.0,
            cycle_threshold_c: 20.0,
            vertical_threshold_c: 10.0,
            cycle_window: 100,
            drain_max_s: 30.0,
        }
    }

    /// A reduced-resolution configuration (4×4 thermal grid) for fast
    /// tests; thresholds and physics are unchanged.
    #[must_use]
    pub fn fast(experiment: Experiment) -> Self {
        let mut cfg = Self::paper_default(experiment);
        cfg.thermal = cfg.thermal.with_grid(4, 4);
        cfg
    }

    /// Returns the configuration with a different thermal transient
    /// integrator (shorthand for setting `thermal.integrator`; the
    /// default is the pre-factored implicit scheme, with
    /// [`Integrator::ExplicitRk4`] retained as the golden reference).
    #[must_use]
    pub fn with_integrator(mut self, integrator: Integrator) -> Self {
        self.thermal = self.thermal.with_integrator(integrator);
        self
    }

    /// Returns the configuration with a different physical/sensing
    /// scenario (stack orientation, TSV variant, sensor profile).
    #[must_use]
    pub fn with_scenario(mut self, scenario: ScenarioConfig) -> Self {
        self.scenario = scenario;
        self
    }

    /// Validates cross-field consistency.
    ///
    /// # Panics
    ///
    /// Panics on inconsistent parameters (non-positive tick, zero cycle
    /// window, gradient/cycle thresholds that are not positive).
    pub fn validate(&self) {
        assert!(self.tick_s > 0.0 && self.tick_s.is_finite(), "tick must be positive");
        assert!(self.cycle_window > 0, "cycle window must be non-empty");
        assert!(self.hotspot_threshold_c > 0.0, "hot-spot threshold must be positive");
        assert!(self.gradient_threshold_c > 0.0, "gradient threshold must be positive");
        assert!(self.cycle_threshold_c > 0.0, "cycle threshold must be positive");
        assert!(self.vertical_threshold_c > 0.0, "vertical threshold must be positive");
        assert!(self.drain_max_s >= 0.0, "drain cap must be non-negative");
        // A hand-set interlayer (`ThermalConfig::with_interlayer`) and a
        // non-default scenario TSV variant are two competing sources for
        // the same physical parameter; refuse the ambiguity instead of
        // letting one silently clobber the other in the engine.
        assert!(
            self.scenario.tsv == therm3d_thermal::TsvVariant::default()
                || self.thermal.interlayer == ThermalConfig::paper_default().interlayer,
            "conflicting interlayer: both `thermal.with_interlayer(..)` and a non-default \
             `scenario.tsv` are set; pick one source for the interlayer material"
        );
        self.thermal.validate();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_validates() {
        for exp in Experiment::ALL {
            SimConfig::paper_default(exp).validate();
            SimConfig::fast(exp).validate();
        }
    }

    #[test]
    fn fast_uses_smaller_grid() {
        let cfg = SimConfig::fast(Experiment::Exp1);
        assert_eq!((cfg.thermal.grid_rows, cfg.thermal.grid_cols), (4, 4));
        assert_eq!(cfg.hotspot_threshold_c, 85.0, "thresholds unchanged");
    }

    #[test]
    fn with_integrator_threads_through_to_the_thermal_config() {
        let cfg = SimConfig::fast(Experiment::Exp1).with_integrator(Integrator::ExplicitRk4);
        assert_eq!(cfg.thermal.integrator, Integrator::ExplicitRk4);
        assert_eq!(
            SimConfig::paper_default(Experiment::Exp1).thermal.integrator,
            Integrator::ImplicitCn,
            "the implicit solver is the workspace-wide default"
        );
    }

    #[test]
    fn with_scenario_carries_every_dimension() {
        use therm3d_floorplan::StackOrder;
        use therm3d_thermal::TsvVariant;

        let scenario = ScenarioConfig::paper_default()
            .with_stack_order(StackOrder::CoresNearSink)
            .with_tsv(TsvVariant::Dense2Pct)
            .with_sensor(crate::sensor::SensorProfile::Quantized1C);
        let cfg = SimConfig::fast(Experiment::Exp3).with_scenario(scenario);
        assert_eq!(cfg.scenario, scenario);
        cfg.validate();
        // The default scenario is the paper's.
        assert!(SimConfig::paper_default(Experiment::Exp1).scenario.is_paper_default());
    }

    #[test]
    fn custom_interlayer_is_allowed_only_with_the_default_tsv_variant() {
        use therm3d_thermal::{Material, TsvVariant};
        let custom = Material::from_resistivity(0.8, 4.0e6);
        // Custom interlayer alone: fine (pre-scenario behaviour kept).
        let mut cfg = SimConfig::fast(Experiment::Exp1);
        cfg.thermal = cfg.thermal.with_interlayer(custom);
        cfg.validate();
        // Scenario TSV variant alone: fine.
        SimConfig::fast(Experiment::Exp1)
            .with_scenario(ScenarioConfig::paper_default().with_tsv(TsvVariant::Dense1Pct))
            .validate();
        // Both at once is ambiguous and must be refused.
        let mut both = SimConfig::fast(Experiment::Exp1)
            .with_scenario(ScenarioConfig::paper_default().with_tsv(TsvVariant::Dense1Pct));
        both.thermal = both.thermal.with_interlayer(custom);
        let err = std::panic::catch_unwind(|| both.validate()).unwrap_err();
        let msg = err
            .downcast_ref::<&str>()
            .map(|s| (*s).to_owned())
            .or_else(|| err.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(msg.contains("conflicting interlayer"), "{msg}");
    }

    #[test]
    #[should_panic(expected = "tick must be positive")]
    fn bad_tick_rejected() {
        let mut cfg = SimConfig::paper_default(Experiment::Exp1);
        cfg.tick_s = 0.0;
        cfg.validate();
    }
}
