//! The unified physical-scenario description: everything that varies a
//! simulation *besides* the experiment, workload and policy.
//!
//! The paper evaluates one fixed scenario — caches bonded to the
//! spreader, 1024 TSVs through the 0.25 m·K/W interface, perfect
//! sensors. This module names those choices and makes them data:
//! a [`ScenarioConfig`] flows from the sweep spec through [`SimConfig`]
//! into the engine, which builds the die stack from the stack order,
//! the RC network from the TSV variant, and the policy-facing sensor
//! from the fidelity profile. Every axis the one-off ablation binaries
//! used to hand-roll (`orientation_study`, `sensor_noise_study`) is
//! reachable declaratively.
//!
//! [`SimConfig`]: crate::SimConfig

use therm3d_floorplan::StackOrder;
use therm3d_thermal::TsvVariant;

use crate::sensor::{SensorModel, SensorProfile};

/// The physical/sensing scenario of one simulation: stack orientation ×
/// TSV/interlayer variant × sensor-fidelity profile (plus the seed the
/// noisy profiles draw from).
///
/// # Examples
///
/// ```
/// use therm3d::{ScenarioConfig, SensorProfile};
/// use therm3d_floorplan::StackOrder;
/// use therm3d_thermal::TsvVariant;
///
/// let paper = ScenarioConfig::paper_default();
/// assert!(paper.is_paper_default());
///
/// let explored = ScenarioConfig::paper_default()
///     .with_stack_order(StackOrder::CoresNearSink)
///     .with_tsv(TsvVariant::Dense1Pct)
///     .with_sensor(SensorProfile::Noisy1C);
/// assert!(!explored.is_paper_default());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ScenarioConfig {
    /// Which die bonds to the heat-spreader side of the split
    /// configurations (EXP-2/EXP-4 are orientation-invariant).
    pub stack_order: StackOrder,
    /// The TSV population / interlayer material the RC network is built
    /// from.
    pub tsv: TsvVariant,
    /// The sensor-fidelity profile the policies observe through
    /// (metrics always use true temperatures).
    pub sensor: SensorProfile,
    /// Seed for the noisy sensor profiles' deterministic noise stream.
    /// The sweep runner derives this from the per-cell trace seed so
    /// noisy cells reproduce bit-identically under the result cache.
    pub sensor_seed: u64,
}

impl ScenarioConfig {
    /// The paper's scenario: cores far from the sink, the 1024-via
    /// joint interlayer, ideal sensors.
    #[must_use]
    pub fn paper_default() -> Self {
        Self {
            stack_order: StackOrder::default(),
            tsv: TsvVariant::default(),
            sensor: SensorProfile::default(),
            sensor_seed: crate::config::DEFAULT_SENSOR_SEED,
        }
    }

    /// Returns the scenario with a different stack orientation.
    #[must_use]
    pub fn with_stack_order(mut self, stack_order: StackOrder) -> Self {
        self.stack_order = stack_order;
        self
    }

    /// Returns the scenario with a different TSV/interlayer variant.
    #[must_use]
    pub fn with_tsv(mut self, tsv: TsvVariant) -> Self {
        self.tsv = tsv;
        self
    }

    /// Returns the scenario with a different sensor profile.
    #[must_use]
    pub fn with_sensor(mut self, sensor: SensorProfile) -> Self {
        self.sensor = sensor;
        self
    }

    /// Returns the scenario with a different sensor noise seed.
    #[must_use]
    pub fn with_sensor_seed(mut self, sensor_seed: u64) -> Self {
        self.sensor_seed = sensor_seed;
        self
    }

    /// `true` when every dimension matches the paper's assumptions
    /// (the sensor seed is irrelevant under the ideal profile).
    #[must_use]
    pub fn is_paper_default(&self) -> bool {
        self.stack_order == StackOrder::default()
            && self.tsv == TsvVariant::default()
            && self.sensor == SensorProfile::default()
    }

    /// The concrete sensor model this scenario equips the engine with.
    #[must_use]
    pub fn sensor_model(&self) -> SensorModel {
        self.sensor.model(self.sensor_seed)
    }
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_is_the_paper_scenario() {
        let s = ScenarioConfig::paper_default();
        assert!(s.is_paper_default());
        assert!(s.sensor_model().is_ideal());
        assert_eq!(s, ScenarioConfig::default());
    }

    #[test]
    fn builders_set_each_dimension() {
        let s = ScenarioConfig::paper_default()
            .with_stack_order(StackOrder::CoresNearSink)
            .with_tsv(TsvVariant::Epoxy)
            .with_sensor(SensorProfile::Noisy3C)
            .with_sensor_seed(99);
        assert_eq!(s.stack_order, StackOrder::CoresNearSink);
        assert_eq!(s.tsv, TsvVariant::Epoxy);
        assert_eq!(s.sensor, SensorProfile::Noisy3C);
        assert_eq!(s.sensor_seed, 99);
        assert!(!s.is_paper_default());
        assert_eq!(s.sensor_model().noise_sigma_c, 3.0);
    }

    #[test]
    fn sensor_seed_does_not_break_paper_defaultness() {
        // Only the physical dimensions count; an unused noise seed must
        // not force a cache split or a different code path.
        let s = ScenarioConfig::paper_default().with_sensor_seed(123);
        assert!(s.is_paper_default());
    }
}
