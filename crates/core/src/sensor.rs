//! Thermal-sensor model: the paper assumes each core has a temperature
//! sensor read every 100 ms (Section IV-D). Real on-die sensors are
//! noisy, offset and quantized; this module models those imperfections
//! so the policies' robustness can be studied (the `sensor_noise_study`
//! ablation). Metrics always use the true temperatures — only the
//! policies see sensor readings.

use std::fmt;
use std::str::FromStr;

/// A named sensor-fidelity profile: the values of the sweep engine's
/// `sensors` axis. Each profile resolves to a concrete [`SensorModel`]
/// through [`model`](Self::model); the noise seed is supplied by the
/// caller so sweep cells can derive it from their own cell seed (noisy
/// cells stay reproducible — and cacheable — for a given spec).
///
/// # Examples
///
/// ```
/// use therm3d::SensorProfile;
///
/// assert!(SensorProfile::Ideal.model(1).is_ideal());
/// assert_eq!("noisy-1c".parse::<SensorProfile>(), Ok(SensorProfile::Noisy1C));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub enum SensorProfile {
    /// A perfect sensor — the paper's implicit assumption.
    #[default]
    Ideal,
    /// Gaussian noise, σ = 1 °C.
    Noisy1C,
    /// Gaussian noise, σ = 3 °C.
    Noisy3C,
    /// 1 °C quantization (2009-era thermal-diode granularity).
    Quantized1C,
    /// σ = 2 °C noise plus 1 °C quantization.
    NoisyQuantized,
    /// A −3 °C calibration offset: the sensor reads cool, the dangerous
    /// failure mode for threshold-triggered policies.
    OffsetCool3C,
}

impl SensorProfile {
    /// Every profile, ideal first.
    pub const ALL: [SensorProfile; 6] = [
        SensorProfile::Ideal,
        SensorProfile::Noisy1C,
        SensorProfile::Noisy3C,
        SensorProfile::Quantized1C,
        SensorProfile::NoisyQuantized,
        SensorProfile::OffsetCool3C,
    ];

    /// Canonical name, as accepted by [`FromStr`] and written by sweep
    /// specs.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            SensorProfile::Ideal => "ideal",
            SensorProfile::Noisy1C => "noisy-1c",
            SensorProfile::Noisy3C => "noisy-3c",
            SensorProfile::Quantized1C => "quantized-1c",
            SensorProfile::NoisyQuantized => "noisy-2c-quant-1c",
            SensorProfile::OffsetCool3C => "offset-cool-3c",
        }
    }

    /// Builds the concrete sensor model. `seed` feeds the noise stream
    /// of the noisy profiles (ignored by the deterministic ones).
    #[must_use]
    pub fn model(self, seed: u64) -> SensorModel {
        match self {
            SensorProfile::Ideal => SensorModel::ideal(),
            SensorProfile::Noisy1C => SensorModel::ideal().with_noise(1.0, seed),
            SensorProfile::Noisy3C => SensorModel::ideal().with_noise(3.0, seed),
            SensorProfile::Quantized1C => SensorModel::ideal().with_quantization(1.0),
            SensorProfile::NoisyQuantized => {
                SensorModel::ideal().with_noise(2.0, seed).with_quantization(1.0)
            }
            SensorProfile::OffsetCool3C => SensorModel::ideal().with_offset(-3.0),
        }
    }
}

impl fmt::Display for SensorProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for SensorProfile {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let lowered = s.to_ascii_lowercase();
        SensorProfile::ALL.into_iter().find(|p| p.name() == lowered).ok_or_else(|| {
            format!(
                "unknown sensor profile `{s}` (expected one of ideal, noisy-1c, noisy-3c, \
                 quantized-1c, noisy-2c-quant-1c, offset-cool-3c)"
            )
        })
    }
}

/// Per-core temperature sensor imperfections applied to policy inputs.
///
/// Readings are deterministic for a given seed: the same run reproduces
/// bit-identically.
///
/// # Examples
///
/// ```
/// use therm3d::SensorModel;
///
/// let mut ideal = SensorModel::ideal();
/// assert_eq!(ideal.read(&[70.0, 80.0]), vec![70.0, 80.0]);
///
/// let mut coarse = SensorModel::ideal().with_quantization(1.0);
/// assert_eq!(coarse.read(&[70.4, 79.6]), vec![70.0, 80.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SensorModel {
    /// Gaussian noise standard deviation, °C (0 = noiseless).
    pub noise_sigma_c: f64,
    /// Quantization step, °C (0 = continuous). Typical 2009-era thermal
    /// diodes quantize at 0.5–1 °C.
    pub quantization_c: f64,
    /// Constant calibration offset, °C.
    pub offset_c: f64,
    /// Noise generator state.
    state: u64,
}

impl SensorModel {
    /// A perfect sensor (the paper's implicit assumption).
    #[must_use]
    pub fn ideal() -> Self {
        Self { noise_sigma_c: 0.0, quantization_c: 0.0, offset_c: 0.0, state: 0x9E3779B9 }
    }

    /// Adds Gaussian noise with the given standard deviation.
    ///
    /// # Panics
    ///
    /// Panics if `sigma_c` is negative.
    #[must_use]
    pub fn with_noise(mut self, sigma_c: f64, seed: u64) -> Self {
        assert!(sigma_c >= 0.0, "noise sigma must be non-negative");
        self.noise_sigma_c = sigma_c;
        self.state = seed | 1;
        self
    }

    /// Quantizes readings to multiples of `step_c`.
    ///
    /// # Panics
    ///
    /// Panics if `step_c` is negative.
    #[must_use]
    pub fn with_quantization(mut self, step_c: f64) -> Self {
        assert!(step_c >= 0.0, "quantization step must be non-negative");
        self.quantization_c = step_c;
        self
    }

    /// Adds a constant calibration offset.
    #[must_use]
    pub fn with_offset(mut self, offset_c: f64) -> Self {
        self.offset_c = offset_c;
        self
    }

    /// `true` when the sensor is a pure pass-through.
    #[must_use]
    pub fn is_ideal(&self) -> bool {
        self.noise_sigma_c == 0.0 && self.quantization_c == 0.0 && self.offset_c == 0.0
    }

    fn next_u64(&mut self) -> u64 {
        // xorshift64*: small, fast, deterministic.
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn next_unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// One approximately-Gaussian sample (Irwin–Hall sum of 12 uniforms).
    fn next_gaussian(&mut self) -> f64 {
        let mut acc = 0.0;
        for _ in 0..12 {
            acc += self.next_unit();
        }
        acc - 6.0
    }

    /// Converts true temperatures into sensor readings, consuming noise
    /// state.
    #[must_use]
    pub fn read(&mut self, true_temps_c: &[f64]) -> Vec<f64> {
        let mut out = Vec::with_capacity(true_temps_c.len());
        self.read_into(true_temps_c, &mut out);
        out
    }

    /// In-place variant of [`read`](Self::read): clears and refills
    /// `out`, so the engine's tick loop can reuse one buffer.
    pub fn read_into(&mut self, true_temps_c: &[f64], out: &mut Vec<f64>) {
        out.clear();
        for &t in true_temps_c {
            let mut r = t + self.offset_c;
            if self.noise_sigma_c > 0.0 {
                r += self.noise_sigma_c * self.next_gaussian();
            }
            if self.quantization_c > 0.0 {
                r = (r / self.quantization_c).round() * self.quantization_c;
            }
            out.push(r);
        }
    }
}

impl Default for SensorModel {
    fn default() -> Self {
        Self::ideal()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_is_passthrough() {
        let mut s = SensorModel::ideal();
        assert!(s.is_ideal());
        let temps = [55.5, 91.25, 45.0];
        assert_eq!(s.read(&temps), temps.to_vec());
    }

    #[test]
    fn quantization_rounds_to_steps() {
        let mut s = SensorModel::ideal().with_quantization(0.5);
        assert_eq!(s.read(&[70.3, 70.6]), vec![70.5, 70.5]);
        assert!(!s.is_ideal());
    }

    #[test]
    fn offset_shifts_all_readings() {
        let mut s = SensorModel::ideal().with_offset(-2.0);
        assert_eq!(s.read(&[80.0]), vec![78.0]);
    }

    #[test]
    fn noise_is_deterministic_per_seed() {
        let run = |seed| {
            let mut s = SensorModel::ideal().with_noise(1.0, seed);
            s.read(&[70.0; 32])
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn noise_statistics_are_plausible() {
        let mut s = SensorModel::ideal().with_noise(2.0, 42);
        let n = 20_000;
        let readings = s.read(&vec![70.0; n]);
        let mean: f64 = readings.iter().sum::<f64>() / n as f64;
        let var: f64 = readings.iter().map(|r| (r - mean) * (r - mean)).sum::<f64>() / n as f64;
        assert!((mean - 70.0).abs() < 0.1, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.1, "sigma {}", var.sqrt());
    }

    #[test]
    #[should_panic(expected = "noise sigma")]
    fn negative_sigma_rejected() {
        let _ = SensorModel::ideal().with_noise(-1.0, 1);
    }

    #[test]
    fn profile_names_round_trip() {
        for p in SensorProfile::ALL {
            assert_eq!(p.name().parse::<SensorProfile>(), Ok(p));
            assert_eq!(p.to_string(), p.name());
        }
        assert_eq!("IDEAL".parse::<SensorProfile>(), Ok(SensorProfile::Ideal));
        assert!("psychic".parse::<SensorProfile>().unwrap_err().contains("psychic"));
    }

    #[test]
    fn profiles_resolve_to_the_expected_models() {
        assert!(SensorProfile::Ideal.model(7).is_ideal());
        let noisy = SensorProfile::Noisy3C.model(7);
        assert_eq!(noisy.noise_sigma_c, 3.0);
        let nq = SensorProfile::NoisyQuantized.model(7);
        assert_eq!((nq.noise_sigma_c, nq.quantization_c), (2.0, 1.0));
        assert_eq!(SensorProfile::OffsetCool3C.model(7).offset_c, -3.0);
        // Noisy profiles honour the seed (reproducible, seed-sensitive).
        let read = |seed| SensorProfile::Noisy1C.model(seed).read(&[70.0; 16]);
        assert_eq!(read(3), read(3));
        assert_ne!(read(3), read(4));
        // Deterministic profiles ignore it.
        assert_eq!(
            SensorProfile::Quantized1C.model(1).read(&[70.3]),
            SensorProfile::Quantized1C.model(2).read(&[70.3])
        );
    }
}
