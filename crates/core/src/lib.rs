//! `therm3d`: a simulator for dynamic thermal management in 3D multicore
//! architectures — a from-scratch Rust reproduction of Coskun, Ayala,
//! Atienza, Rosing & Leblebici, "Dynamic Thermal Management in 3D
//! Multicore Architectures", DATE 2009.
//!
//! The crate couples five substrates into the paper's experimental loop:
//!
//! 1. [`therm3d_floorplan`] — UltraSPARC T1-derived 3D stacks (EXP-1..4),
//! 2. [`therm3d_thermal`] — a HotSpot-style RC grid thermal solver,
//! 3. [`therm3d_power`] — state-based power with DVFS and leakage feedback,
//! 4. [`therm3d_workload`] — Table I benchmarks and synthetic job traces,
//! 5. [`therm3d_policies`] — all eleven DTM policies including Adapt3D.
//!
//! Every 100 ms tick the [`Simulator`] reads the thermal sensors, lets the
//! policy steer placement/DVFS/gating/sleep, executes the dispatch queues,
//! evaluates power (leakage at current temperature), and advances the RC
//! thermal network; [`therm3d_metrics`] trackers accumulate the hot-spot,
//! gradient, cycle and performance numbers of Figures 3–6.
//!
//! # Quick start
//!
//! ```
//! use therm3d::{SimConfig, Simulator};
//! use therm3d_floorplan::Experiment;
//! use therm3d_policies::PolicyKind;
//! use therm3d_workload::{Benchmark, TraceConfig};
//!
//! let exp = Experiment::Exp2;
//! let stack = exp.stack();
//! let policy = PolicyKind::Adapt3d.build(&stack, 0xACE1);
//! let trace = TraceConfig::new(Benchmark::WebMed, stack.num_cores(), 5.0).generate();
//! let mut sim = Simulator::new(SimConfig::fast(exp), policy);
//! let result = sim.run(&trace, 5.0);
//! println!("{result}");
//! ```

pub mod config;
pub mod engine;
pub mod result;
pub mod scenario;
pub mod sensor;
pub mod streaming;

pub use config::{SimConfig, DEFAULT_SENSOR_SEED};
pub use engine::{Simulator, TickSample};
pub use result::RunResult;
pub use scenario::ScenarioConfig;
pub use sensor::{SensorModel, SensorProfile};
pub use streaming::StreamingRecorder;

pub use therm3d_floorplan as floorplan;
pub use therm3d_metrics as metrics;
pub use therm3d_policies as policies;
pub use therm3d_power as power;
pub use therm3d_thermal as thermal;
pub use therm3d_workload as workload;
