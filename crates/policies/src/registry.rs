//! A registry of every policy evaluated in the paper, keyed by the labels
//! of Figures 3–6.

use std::fmt;
use std::str::FromStr;

use therm3d_floorplan::Stack3d;
use therm3d_power::VfTable;

use crate::adaptive::AdaptivePolicy;
use crate::baseline::DefaultPolicy;
use crate::dpm::DpmWrapper;
use crate::dvfs::{CGate, DvfsFlp, DvfsTt, DvfsUtil};
use crate::hybrid::HybridPolicy;
use crate::migration::Migration;
use crate::policy::Policy;

/// Every policy configuration evaluated in the paper's figures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PolicyKind {
    /// Dynamic load balancing (the OS default; the baseline).
    Default,
    /// Clock gating on thermal emergency.
    CGate,
    /// DVFS with temperature trigger.
    DvfsTt,
    /// Utilization-driven DVFS.
    DvfsUtil,
    /// Floorplan-aware static DVFS.
    DvfsFlp,
    /// Temperature-triggered job migration.
    Migr,
    /// Adaptive-Random allocation (DATE'07).
    AdaptRand,
    /// The paper's 3D-aware adaptive allocation.
    Adapt3d,
    /// Hybrid: Adapt3D allocation + DVFS_TT control.
    Adapt3dDvfsTt,
    /// Hybrid: Adapt3D allocation + DVFS_Util control.
    Adapt3dDvfsUtil,
    /// Hybrid: Adapt3D allocation + DVFS_FLP control.
    Adapt3dDvfsFlp,
}

impl PolicyKind {
    /// All policies in the order the figures present them.
    pub const ALL: [PolicyKind; 11] = [
        PolicyKind::Default,
        PolicyKind::CGate,
        PolicyKind::DvfsTt,
        PolicyKind::DvfsUtil,
        PolicyKind::DvfsFlp,
        PolicyKind::Migr,
        PolicyKind::AdaptRand,
        PolicyKind::Adapt3d,
        PolicyKind::Adapt3dDvfsTt,
        PolicyKind::Adapt3dDvfsUtil,
        PolicyKind::Adapt3dDvfsFlp,
    ];

    /// The figure label used in the paper.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            PolicyKind::Default => "Default",
            PolicyKind::CGate => "CGate",
            PolicyKind::DvfsTt => "DVFS_TT",
            PolicyKind::DvfsUtil => "DVFS_Util",
            PolicyKind::DvfsFlp => "DVFS_FLP",
            PolicyKind::Migr => "Migr",
            PolicyKind::AdaptRand => "AdaptRand",
            PolicyKind::Adapt3d => "Adapt3D",
            PolicyKind::Adapt3dDvfsTt => "Adapt3D&DVFS_TT",
            PolicyKind::Adapt3dDvfsUtil => "Adapt3D&DVFS_Util",
            PolicyKind::Adapt3dDvfsFlp => "Adapt3D&DVFS_FLP",
        }
    }

    /// `true` for the Adapt3D + DVFS combinations of Section III-C.
    #[must_use]
    pub fn is_hybrid(self) -> bool {
        matches!(
            self,
            PolicyKind::Adapt3dDvfsTt | PolicyKind::Adapt3dDvfsUtil | PolicyKind::Adapt3dDvfsFlp
        )
    }

    /// `true` if the policy scales voltage/frequency.
    #[must_use]
    pub fn uses_dvfs(self) -> bool {
        matches!(
            self,
            PolicyKind::DvfsTt
                | PolicyKind::DvfsUtil
                | PolicyKind::DvfsFlp
                | PolicyKind::Adapt3dDvfsTt
                | PolicyKind::Adapt3dDvfsUtil
                | PolicyKind::Adapt3dDvfsFlp
        )
    }

    /// Instantiates the policy for `stack`, deriving per-core thermal
    /// indices from the stack geometry where needed.
    ///
    /// `seed` drives the adaptive policies' LFSR; the same seed reproduces
    /// the same run exactly.
    #[must_use]
    pub fn build(self, stack: &Stack3d, seed: u16) -> Box<dyn Policy> {
        let n = stack.num_cores();
        let alphas = stack.default_thermal_indices();
        let vf = VfTable::paper_default();
        match self {
            PolicyKind::Default => Box::new(DefaultPolicy::new()),
            PolicyKind::CGate => Box::new(CGate::new()),
            PolicyKind::DvfsTt => Box::new(DvfsTt::new(n)),
            PolicyKind::DvfsUtil => Box::new(DvfsUtil::new()),
            PolicyKind::DvfsFlp => Box::new(DvfsFlp::from_thermal_indices(&alphas, &vf)),
            PolicyKind::Migr => Box::new(Migration::new()),
            PolicyKind::AdaptRand => Box::new(AdaptivePolicy::adapt_rand(n, seed)),
            PolicyKind::Adapt3d => Box::new(AdaptivePolicy::adapt3d(alphas, seed)),
            PolicyKind::Adapt3dDvfsTt => {
                Box::new(HybridPolicy::new(AdaptivePolicy::adapt3d(alphas, seed), DvfsTt::new(n)))
            }
            PolicyKind::Adapt3dDvfsUtil => {
                Box::new(HybridPolicy::new(AdaptivePolicy::adapt3d(alphas, seed), DvfsUtil::new()))
            }
            PolicyKind::Adapt3dDvfsFlp => Box::new(HybridPolicy::new(
                AdaptivePolicy::adapt3d(alphas.clone(), seed),
                DvfsFlp::from_thermal_indices(&alphas, &vf),
            )),
        }
    }

    /// Instantiates the policy, optionally wrapped in fixed-timeout DPM
    /// (the Figures 4–6 configurations).
    #[must_use]
    pub fn build_with_dpm(self, stack: &Stack3d, seed: u16, dpm: bool) -> Box<dyn Policy> {
        let inner = self.build(stack, seed);
        if dpm {
            Box::new(DpmWrapper::new(inner))
        } else {
            inner
        }
    }
}

impl fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Error returned when parsing a [`PolicyKind`] from a string fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsePolicyError(String);

impl fmt::Display for ParsePolicyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown policy `{}`", self.0)
    }
}

impl std::error::Error for ParsePolicyError {}

impl FromStr for PolicyKind {
    type Err = ParsePolicyError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let norm = s.to_ascii_lowercase().replace(['_', '-', '&', ' '], "");
        PolicyKind::ALL
            .iter()
            .find(|k| k.label().to_ascii_lowercase().replace(['_', '&'], "") == norm)
            .copied()
            .ok_or_else(|| ParsePolicyError(s.to_owned()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use therm3d_floorplan::Experiment;

    #[test]
    fn builds_every_policy_for_every_experiment() {
        for exp in Experiment::ALL {
            let stack = exp.stack();
            for kind in PolicyKind::ALL {
                let p = kind.build(&stack, 0x1357);
                assert_eq!(p.name(), kind.label(), "{exp}/{kind}");
            }
        }
    }

    #[test]
    fn dpm_wrapper_changes_name() {
        let stack = Experiment::Exp1.stack();
        let p = PolicyKind::Adapt3d.build_with_dpm(&stack, 1, true);
        assert_eq!(p.name(), "Adapt3D+DPM");
        let p = PolicyKind::Adapt3d.build_with_dpm(&stack, 1, false);
        assert_eq!(p.name(), "Adapt3D");
    }

    #[test]
    fn classification_flags() {
        assert!(PolicyKind::Adapt3dDvfsTt.is_hybrid());
        assert!(!PolicyKind::Adapt3d.is_hybrid());
        assert!(PolicyKind::DvfsUtil.uses_dvfs());
        assert!(!PolicyKind::Migr.uses_dvfs());
    }

    #[test]
    fn parse_round_trip() {
        for kind in PolicyKind::ALL {
            assert_eq!(kind.label().parse::<PolicyKind>().unwrap(), kind);
        }
        assert_eq!("adapt3d".parse::<PolicyKind>().unwrap(), PolicyKind::Adapt3d);
        assert!("frobnicate".parse::<PolicyKind>().is_err());
    }

    #[test]
    fn all_has_eleven_entries_like_the_figures() {
        assert_eq!(PolicyKind::ALL.len(), 11);
    }
}
