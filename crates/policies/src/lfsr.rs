//! A Fibonacci linear-feedback shift register.
//!
//! The paper notes that the random number generator its adaptive policies
//! need "can be implemented through a linear-feedback shift register
//! (LFSR), which often exists on the chip for test purposes" — so the
//! adaptive allocators here draw from exactly that: a 16-bit maximal-length
//! Fibonacci LFSR (taps 16, 15, 13, 4; period 65535).

/// 16-bit maximal-length Fibonacci LFSR.
///
/// # Examples
///
/// ```
/// use therm3d_policies::lfsr::Lfsr16;
///
/// let mut rng = Lfsr16::new(0xACE1);
/// let x = rng.next_f64();
/// assert!((0.0..1.0).contains(&x));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Lfsr16 {
    state: u16,
}

impl Lfsr16 {
    /// Creates an LFSR from a seed; a zero seed (the lock-up state) is
    /// remapped to the conventional `0xACE1`.
    #[must_use]
    pub fn new(seed: u16) -> Self {
        Self { state: if seed == 0 { 0xACE1 } else { seed } }
    }

    /// Advances one bit and returns it.
    pub fn next_bit(&mut self) -> u16 {
        // Taps: 16, 15, 13, 4 (1-based) → bits 0, 1, 3, 12 of the
        // right-shifting register.
        let bit = (self.state ^ (self.state >> 1) ^ (self.state >> 3) ^ (self.state >> 12)) & 1;
        self.state = (self.state >> 1) | (bit << 15);
        bit
    }

    /// Returns the next 16 pseudo-random bits.
    pub fn next_u16(&mut self) -> u16 {
        let mut v = 0u16;
        for _ in 0..16 {
            v = (v << 1) | self.next_bit();
        }
        v
    }

    /// A pseudo-random `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        f64::from(self.next_u16()) / f64::from(u16::MAX) * (1.0 - f64::EPSILON)
    }

    /// Samples an index from a (not necessarily normalized) non-negative
    /// weight vector; returns `None` if all weights are zero.
    ///
    /// # Panics
    ///
    /// Panics if any weight is negative or not finite.
    pub fn sample_weighted(&mut self, weights: &[f64]) -> Option<usize> {
        let mut total = 0.0;
        for (i, &w) in weights.iter().enumerate() {
            assert!(w.is_finite() && w >= 0.0, "weight {i} is {w}");
            total += w;
        }
        if total <= 0.0 {
            return None;
        }
        let mut target = self.next_f64() * total;
        for (i, &w) in weights.iter().enumerate() {
            target -= w;
            if target < 0.0 {
                return Some(i);
            }
        }
        Some(weights.len() - 1)
    }
}

impl Default for Lfsr16 {
    fn default() -> Self {
        Self::new(0xACE1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_period() {
        let mut l = Lfsr16::new(1);
        let start = l;
        let mut count = 0u32;
        loop {
            l.next_bit();
            count += 1;
            if l == start || count > 70_000 {
                break;
            }
        }
        assert_eq!(count, 65_535, "maximal-length 16-bit LFSR period");
    }

    #[test]
    fn zero_seed_remapped() {
        let a = Lfsr16::new(0);
        let b = Lfsr16::new(0xACE1);
        assert_eq!(a, b);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut l = Lfsr16::default();
        for _ in 0..1000 {
            let x = l.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn roughly_uniform() {
        let mut l = Lfsr16::new(0xBEEF);
        let mut buckets = [0usize; 4];
        let n = 4000;
        for _ in 0..n {
            buckets[(l.next_f64() * 4.0) as usize] += 1;
        }
        for (i, &b) in buckets.iter().enumerate() {
            let frac = b as f64 / n as f64;
            assert!((frac - 0.25).abs() < 0.05, "bucket {i}: {frac}");
        }
    }

    #[test]
    fn weighted_sampling_respects_weights() {
        let mut l = Lfsr16::new(0x1234);
        let weights = [0.0, 0.8, 0.2, 0.0];
        let mut counts = [0usize; 4];
        for _ in 0..2000 {
            counts[l.sample_weighted(&weights).expect("non-zero weights")] += 1;
        }
        assert_eq!(counts[0], 0);
        assert_eq!(counts[3], 0);
        assert!(counts[1] > 3 * counts[2], "{counts:?}");
    }

    #[test]
    fn all_zero_weights_yield_none() {
        let mut l = Lfsr16::default();
        assert_eq!(l.sample_weighted(&[0.0, 0.0]), None);
        assert_eq!(l.sample_weighted(&[]), None);
    }

    #[test]
    #[should_panic(expected = "weight")]
    fn negative_weight_rejected() {
        let mut l = Lfsr16::default();
        let _ = l.sample_weighted(&[0.5, -0.1]);
    }
}
