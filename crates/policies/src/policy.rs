//! The policy abstraction: observations in, placement and control
//! decisions out.

use therm3d_floorplan::CoreId;
use therm3d_workload::Job;

/// What every policy sees at each scheduling tick (100 ms in the paper):
/// per-core thermal sensor readings and scheduler statistics.
#[derive(Debug, Clone, Copy)]
pub struct Observation<'a> {
    /// Simulation time at the start of the tick, seconds.
    pub now_s: f64,
    /// Tick length, seconds.
    pub tick_s: f64,
    /// Per-core temperature sensor readings, °C.
    pub core_temps_c: &'a [f64],
    /// Per-core utilization over the previous tick, `[0, 1]`.
    pub utilization: &'a [f64],
    /// Per-core queue length (jobs, including the running one).
    pub queue_len: &'a [usize],
    /// Per-core queued work, seconds of CPU demand.
    pub queued_work_s: &'a [f64],
    /// Per-core continuous idle time so far, seconds (for DPM timeouts).
    pub idle_time_s: &'a [f64],
}

impl Observation<'_> {
    /// Number of cores observed.
    #[must_use]
    pub fn n_cores(&self) -> usize {
        self.core_temps_c.len()
    }

    /// Index of the coolest core, optionally excluding some cores.
    ///
    /// Returns `None` when every core is excluded.
    #[must_use]
    pub fn coolest_core(&self, exclude: &[bool]) -> Option<CoreId> {
        let mut best: Option<(usize, f64)> = None;
        for (i, &t) in self.core_temps_c.iter().enumerate() {
            if exclude.get(i).copied().unwrap_or(false) {
                continue;
            }
            if best.is_none_or(|(_, bt)| t < bt) {
                best = Some((i, t));
            }
        }
        best.map(|(i, _)| CoreId(i))
    }
}

/// Per-core actuation for the next tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoreCommand {
    /// V/f level index (0 = default/fastest).
    pub vf_index: usize,
    /// Clock-gate the core (no progress, no dynamic power).
    pub gated: bool,
    /// Put the core in the sleep state (DPM).
    pub asleep: bool,
}

impl CoreCommand {
    /// Full speed, running.
    #[must_use]
    pub fn run() -> Self {
        Self { vf_index: 0, gated: false, asleep: false }
    }

    /// Running at the given V/f level.
    #[must_use]
    pub fn at_level(vf_index: usize) -> Self {
        Self { vf_index, gated: false, asleep: false }
    }
}

impl Default for CoreCommand {
    fn default() -> Self {
        Self::run()
    }
}

/// The control output of a policy for one tick.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ControlDecision {
    /// One command per core. Empty means "leave everything at the
    /// default".
    pub commands: Vec<CoreCommand>,
    /// Migrations to apply this tick, `(from, to)` pairs.
    pub migrations: Vec<(CoreId, CoreId)>,
}

impl ControlDecision {
    /// Run every core at the default setting, no migrations.
    #[must_use]
    pub fn run_all(n_cores: usize) -> Self {
        Self { commands: vec![CoreCommand::run(); n_cores], migrations: Vec::new() }
    }
}

/// A dynamic thermal management policy: job placement plus per-tick
/// control.
///
/// Implementations are deterministic given their seed, so experiments are
/// exactly reproducible.
pub trait Policy: Send {
    /// A short human-readable name (matching the paper's figure labels,
    /// e.g. `"Adapt3D"`).
    fn name(&self) -> &str;

    /// Chooses the core for a newly arrived job.
    fn place_job(&mut self, job: &Job, obs: &Observation<'_>, queue_hint: &QueueHint<'_>)
        -> CoreId;

    /// Produces the control decision for the next tick.
    fn control(&mut self, obs: &Observation<'_>) -> ControlDecision;
}

/// Queue-state summary handed to placement decisions (what the Solaris
/// dispatcher would know).
#[derive(Debug, Clone, Copy)]
pub struct QueueHint<'a> {
    /// Queued CPU work per core, seconds.
    pub queued_work_s: &'a [f64],
    /// Queue length per core.
    pub queue_len: &'a [usize],
}

impl QueueHint<'_> {
    /// Core with the least queued work (the load-balancing default).
    #[must_use]
    pub fn least_loaded(&self) -> CoreId {
        let mut best = 0usize;
        let mut best_w = f64::INFINITY;
        for (i, &w) in self.queued_work_s.iter().enumerate() {
            if w < best_w {
                best_w = w;
                best = i;
            }
        }
        CoreId(best)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coolest_core_with_exclusions() {
        let temps = [80.0, 60.0, 70.0];
        let obs = Observation {
            now_s: 0.0,
            tick_s: 0.1,
            core_temps_c: &temps,
            utilization: &[0.0; 3],
            queue_len: &[0; 3],
            queued_work_s: &[0.0; 3],
            idle_time_s: &[0.0; 3],
        };
        assert_eq!(obs.coolest_core(&[false; 3]), Some(CoreId(1)));
        assert_eq!(obs.coolest_core(&[false, true, false]), Some(CoreId(2)));
        assert_eq!(obs.coolest_core(&[true; 3]), None);
    }

    #[test]
    fn queue_hint_least_loaded() {
        let h = QueueHint { queued_work_s: &[0.5, 0.1, 0.3], queue_len: &[2, 1, 1] };
        assert_eq!(h.least_loaded(), CoreId(1));
    }

    #[test]
    fn command_constructors() {
        assert_eq!(CoreCommand::run(), CoreCommand { vf_index: 0, gated: false, asleep: false });
        assert_eq!(CoreCommand::at_level(2).vf_index, 2);
        assert_eq!(CoreCommand::default(), CoreCommand::run());
    }

    #[test]
    fn run_all_decision() {
        let d = ControlDecision::run_all(4);
        assert_eq!(d.commands.len(), 4);
        assert!(d.migrations.is_empty());
    }
}
