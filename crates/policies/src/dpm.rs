//! Dynamic power management (Section IV-B): a fixed-timeout sleep policy
//! layered over any DTM policy.
//!
//! DPM does not target temperature directly, but the paper shows it
//! changes the thermal picture substantially: sleeping cores cool far
//! below the active range (reducing hot spots) while creating the large
//! temperature swings that drive thermal cycling (Figure 6).

use therm3d_floorplan::CoreId;
use therm3d_workload::Job;

use crate::policy::{ControlDecision, Observation, Policy, QueueHint};

/// Default sleep timeout in seconds.
pub const DEFAULT_TIMEOUT_S: f64 = 0.5;

/// A fixed-timeout DPM wrapper: any core idle for longer than the timeout
/// is put into the 0.02 W sleep state; it wakes as soon as work is queued
/// for it.
///
/// # Examples
///
/// ```
/// use therm3d_policies::{DefaultPolicy, DpmWrapper, Policy};
///
/// let p = DpmWrapper::new(DefaultPolicy::new());
/// assert_eq!(p.name(), "Default+DPM");
/// ```
#[derive(Debug)]
pub struct DpmWrapper<P> {
    inner: P,
    timeout_s: f64,
    name: String,
}

impl<P: Policy> DpmWrapper<P> {
    /// Wraps `inner` with the default 0.5 s timeout.
    #[must_use]
    pub fn new(inner: P) -> Self {
        Self::with_timeout(inner, DEFAULT_TIMEOUT_S)
    }

    /// Wraps `inner` with a custom timeout.
    ///
    /// # Panics
    ///
    /// Panics if `timeout_s` is not strictly positive.
    #[must_use]
    pub fn with_timeout(inner: P, timeout_s: f64) -> Self {
        assert!(timeout_s > 0.0, "timeout must be positive");
        let name = format!("{}+DPM", inner.name());
        Self { inner, timeout_s, name }
    }

    /// The wrapped policy.
    #[must_use]
    pub fn inner(&self) -> &P {
        &self.inner
    }

    /// The sleep timeout in seconds.
    #[must_use]
    pub fn timeout_s(&self) -> f64 {
        self.timeout_s
    }
}

impl<P: Policy> Policy for DpmWrapper<P> {
    fn name(&self) -> &str {
        &self.name
    }

    fn place_job(
        &mut self,
        job: &Job,
        obs: &Observation<'_>,
        queue_hint: &QueueHint<'_>,
    ) -> CoreId {
        self.inner.place_job(job, obs, queue_hint)
    }

    fn control(&mut self, obs: &Observation<'_>) -> ControlDecision {
        let mut decision = self.inner.control(obs);
        if decision.commands.is_empty() {
            decision.commands = ControlDecision::run_all(obs.n_cores()).commands;
        }
        for (i, cmd) in decision.commands.iter_mut().enumerate() {
            // Sleep only truly idle cores past the timeout; a queued job
            // always wins over sleep.
            if obs.queue_len[i] == 0 && obs.idle_time_s[i] >= self.timeout_s {
                cmd.asleep = true;
            }
        }
        decision
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::DefaultPolicy;
    use crate::dvfs::DvfsTt;

    fn obs<'a>(temps: &'a [f64], qlen: &'a [usize], idle: &'a [f64]) -> Observation<'a> {
        Observation {
            now_s: 0.0,
            tick_s: 0.1,
            core_temps_c: temps,
            utilization: &[0.0; 4][..temps.len()],
            queue_len: qlen,
            queued_work_s: &[0.0; 4][..temps.len()],
            idle_time_s: idle,
        }
    }

    #[test]
    fn sleeps_idle_cores_past_timeout() {
        let mut p = DpmWrapper::with_timeout(DefaultPolicy::new(), 0.5);
        let temps = [60.0, 60.0, 60.0];
        let qlen = [0usize, 0, 1];
        let idle = [0.6, 0.2, 0.0];
        let d = p.control(&obs(&temps, &qlen, &idle));
        assert!(d.commands[0].asleep, "idle past timeout");
        assert!(!d.commands[1].asleep, "idle but below timeout");
        assert!(!d.commands[2].asleep, "busy core never sleeps");
    }

    #[test]
    fn queued_work_prevents_sleep() {
        let mut p = DpmWrapper::new(DefaultPolicy::new());
        let temps = [60.0];
        let qlen = [2usize];
        let idle = [10.0]; // stale idle clock, but work is queued
        let d = p.control(&obs(&temps, &qlen, &idle));
        assert!(!d.commands[0].asleep);
    }

    #[test]
    fn inner_policy_decisions_preserved() {
        let mut p = DpmWrapper::new(DvfsTt::new(2));
        let temps = [90.0, 60.0];
        let qlen = [1usize, 0];
        let idle = [0.0, 1.0];
        let d = p.control(&obs(&temps, &qlen, &idle));
        assert_eq!(d.commands[0].vf_index, 1, "DVFS_TT still throttles");
        assert!(d.commands[1].asleep, "DPM still sleeps the idle core");
    }

    #[test]
    #[should_panic(expected = "timeout must be positive")]
    fn zero_timeout_rejected() {
        let _ = DpmWrapper::with_timeout(DefaultPolicy::new(), 0.0);
    }
}
