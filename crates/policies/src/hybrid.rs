//! Hybrid policies (Section III-C): an adaptive job allocator combined
//! with a DVFS controller — the paper's best performers on 4-layer
//! systems.

use therm3d_floorplan::CoreId;
use therm3d_workload::Job;

use crate::policy::{ControlDecision, Observation, Policy, QueueHint};

/// Composition of a placement policy (who gets new jobs) with a control
/// policy (V/f, gating). Placement decisions come from `allocator`;
/// per-core commands from `controller`; migrations from both (allocator
/// first).
///
/// # Examples
///
/// ```
/// use therm3d_policies::{AdaptivePolicy, DvfsTt, HybridPolicy, Policy};
///
/// let alloc = AdaptivePolicy::adapt3d(vec![0.3, 0.7], 1);
/// let hybrid = HybridPolicy::new(alloc, DvfsTt::new(2));
/// assert_eq!(hybrid.name(), "Adapt3D&DVFS_TT");
/// ```
#[derive(Debug)]
pub struct HybridPolicy<A, C> {
    allocator: A,
    controller: C,
    name: String,
}

impl<A: Policy, C: Policy> HybridPolicy<A, C> {
    /// Combines `allocator` (placement) with `controller` (DVFS/gating).
    #[must_use]
    pub fn new(allocator: A, controller: C) -> Self {
        let name = format!("{}&{}", allocator.name(), controller.name());
        Self { allocator, controller, name }
    }

    /// The placement half.
    #[must_use]
    pub fn allocator(&self) -> &A {
        &self.allocator
    }

    /// The control half.
    #[must_use]
    pub fn controller(&self) -> &C {
        &self.controller
    }
}

impl<A: Policy, C: Policy> Policy for HybridPolicy<A, C> {
    fn name(&self) -> &str {
        &self.name
    }

    fn place_job(
        &mut self,
        job: &Job,
        obs: &Observation<'_>,
        queue_hint: &QueueHint<'_>,
    ) -> CoreId {
        self.allocator.place_job(job, obs, queue_hint)
    }

    fn control(&mut self, obs: &Observation<'_>) -> ControlDecision {
        // Let the allocator update its internal state (probabilities) and
        // contribute migrations; take the actuation commands from the
        // controller.
        let alloc_decision = self.allocator.control(obs);
        let ctrl_decision = self.controller.control(obs);
        let mut migrations = alloc_decision.migrations;
        migrations.extend(ctrl_decision.migrations);
        ControlDecision { commands: ctrl_decision.commands, migrations }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adaptive::AdaptivePolicy;
    use crate::dvfs::{DvfsTt, DvfsUtil};

    fn obs<'a>(temps: &'a [f64], util: &'a [f64], qlen: &'a [usize]) -> Observation<'a> {
        Observation {
            now_s: 0.0,
            tick_s: 0.1,
            core_temps_c: temps,
            utilization: util,
            queue_len: qlen,
            queued_work_s: &[0.0; 8][..temps.len()],
            idle_time_s: &[0.0; 8][..temps.len()],
        }
    }

    #[test]
    fn commands_come_from_controller() {
        let mut h = HybridPolicy::new(AdaptivePolicy::adapt3d(vec![0.4, 0.6], 1), DvfsTt::new(2));
        let d = h.control(&obs(&[90.0, 60.0], &[1.0, 0.2], &[1, 1]));
        assert_eq!(d.commands[0].vf_index, 1, "TT stepped the hot core down");
        assert_eq!(d.commands[1].vf_index, 0);
    }

    #[test]
    fn placement_comes_from_allocator() {
        let mut h = HybridPolicy::new(AdaptivePolicy::adapt3d(vec![0.5, 0.5], 3), DvfsUtil::new());
        // Drive core 0 into emergency so the allocator zeroes it.
        h.control(&obs(&[90.0, 60.0], &[1.0, 0.2], &[1, 1]));
        let job = therm3d_workload::Job::new(0, 0.0, 1.0, 0.5, therm3d_workload::Benchmark::Gcc);
        let temps = [90.0, 60.0];
        let o = obs(&temps, &[1.0, 0.2], &[1, 1]);
        let hint = QueueHint { queued_work_s: &[0.0, 0.0], queue_len: &[0, 0] };
        for _ in 0..20 {
            assert_eq!(h.place_job(&job, &o, &hint), CoreId(1));
        }
    }

    #[test]
    fn allocator_state_still_updates() {
        let mut h = HybridPolicy::new(AdaptivePolicy::adapt3d(vec![0.5, 0.5], 3), DvfsTt::new(2));
        for _ in 0..10 {
            h.control(&obs(&[84.0, 60.0], &[1.0, 0.2], &[1, 1]));
        }
        assert!(
            h.allocator().probabilities()[1] > 0.7,
            "adaptive probabilities keep evolving inside the hybrid"
        );
    }

    #[test]
    fn name_matches_paper_labels() {
        let h = HybridPolicy::new(AdaptivePolicy::adapt3d(vec![0.5], 1), DvfsUtil::new());
        assert_eq!(h.name(), "Adapt3D&DVFS_Util");
    }
}
