//! Dynamic thermal management policies for 3D multicore systems — the
//! behavioural heart of the `therm3d` reproduction of
//! "Dynamic Thermal Management in 3D Multicore Architectures"
//! (Coskun et al., DATE 2009).
//!
//! The crate provides:
//!
//! - the multi-queue scheduler substrate ([`queue::MultiQueue`]) with
//!   1 ms-cost job migration,
//! - the [`Policy`] trait (placement + per-tick control),
//! - every policy the paper evaluates: [`DefaultPolicy`] (load
//!   balancing), [`CGate`], [`DvfsTt`], [`DvfsUtil`], [`DvfsFlp`],
//!   [`Migration`], [`AdaptivePolicy::adapt_rand`],
//!   [`AdaptivePolicy::adapt3d`] (the paper's contribution), the
//!   [`HybridPolicy`] combinations, and the [`DpmWrapper`] fixed-timeout
//!   sleep layer,
//! - a [`PolicyKind`] registry keyed by the labels of Figures 3–6.
//!
//! # Quick start
//!
//! ```
//! use therm3d_floorplan::Experiment;
//! use therm3d_policies::PolicyKind;
//!
//! let stack = Experiment::Exp3.stack();
//! let mut policy = PolicyKind::Adapt3d.build(&stack, 0xACE1);
//! assert_eq!(policy.name(), "Adapt3D");
//! ```

pub mod adaptive;
pub mod baseline;
pub mod dpm;
pub mod dvfs;
pub mod hybrid;
pub mod lfsr;
pub mod migration;
pub mod policy;
pub mod queue;
pub mod registry;

pub use adaptive::{AdaptiveConfig, AdaptivePolicy};
pub use baseline::DefaultPolicy;
pub use dpm::DpmWrapper;
pub use dvfs::{CGate, DvfsFlp, DvfsTt, DvfsUtil, DEFAULT_THRESHOLD_C};
pub use hybrid::HybridPolicy;
pub use lfsr::Lfsr16;
pub use migration::Migration;
pub use policy::{ControlDecision, CoreCommand, Observation, Policy, QueueHint};
pub use queue::{CompletedJob, MultiQueue, ResidentJob, MIGRATION_COST_S};
pub use registry::{ParsePolicyError, PolicyKind};

impl Policy for Box<dyn Policy> {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn place_job(
        &mut self,
        job: &therm3d_workload::Job,
        obs: &Observation<'_>,
        queue_hint: &QueueHint<'_>,
    ) -> therm3d_floorplan::CoreId {
        (**self).place_job(job, obs, queue_hint)
    }

    fn control(&mut self, obs: &Observation<'_>) -> ControlDecision {
        (**self).control(obs)
    }
}
