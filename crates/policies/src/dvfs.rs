//! DVFS- and clock-gating-based thermal policies (Section III-A):
//! `CGate`, `DVFS_TT`, `DVFS_Util` and `DVFS_FLP`.

use therm3d_floorplan::CoreId;
use therm3d_power::VfTable;
use therm3d_workload::Job;

use crate::baseline::AffinityPlacer;
use crate::policy::{ControlDecision, CoreCommand, Observation, Policy, QueueHint};

/// The default thermal-emergency threshold, °C (Section III-B: 85 °C).
pub const DEFAULT_THRESHOLD_C: f64 = 85.0;

/// Clock gating (`CGate`): run at the default V/f until a core crosses the
/// thermal threshold, then stall it (clock gated, dynamic power off) until
/// it cools below the threshold again. Modeled as in Donald & Martonosi
/// (ISCA'06), per the paper.
#[derive(Debug, Clone)]
pub struct CGate {
    threshold_c: f64,
    placer: AffinityPlacer,
}

impl CGate {
    /// Creates the policy with the paper's 85 °C threshold.
    #[must_use]
    pub fn new() -> Self {
        Self::with_threshold(DEFAULT_THRESHOLD_C)
    }

    /// Creates the policy with a custom threshold.
    #[must_use]
    pub fn with_threshold(threshold_c: f64) -> Self {
        Self { threshold_c, placer: AffinityPlacer::new() }
    }
}

impl Default for CGate {
    fn default() -> Self {
        Self::new()
    }
}

impl Policy for CGate {
    fn name(&self) -> &str {
        "CGate"
    }

    fn place_job(
        &mut self,
        job: &Job,
        _obs: &Observation<'_>,
        queue_hint: &QueueHint<'_>,
    ) -> CoreId {
        self.placer.place(job, queue_hint)
    }

    fn control(&mut self, obs: &Observation<'_>) -> ControlDecision {
        let commands = obs
            .core_temps_c
            .iter()
            .map(|&t| CoreCommand { vf_index: 0, gated: t > self.threshold_c, asleep: false })
            .collect();
        ControlDecision { commands, migrations: Vec::new() }
    }
}

/// DVFS with temperature trigger (`DVFS_TT`): step V/f one level down
/// while a core is above the threshold, one level up per interval once it
/// is below.
#[derive(Debug, Clone)]
pub struct DvfsTt {
    threshold_c: f64,
    vf: VfTable,
    levels: Vec<usize>,
    placer: AffinityPlacer,
}

impl DvfsTt {
    /// Creates the policy for `n_cores` with the paper's threshold and V/f
    /// table.
    #[must_use]
    pub fn new(n_cores: usize) -> Self {
        Self::with_config(n_cores, DEFAULT_THRESHOLD_C, VfTable::paper_default())
    }

    /// Creates the policy with explicit threshold and table.
    #[must_use]
    pub fn with_config(n_cores: usize, threshold_c: f64, vf: VfTable) -> Self {
        Self { threshold_c, vf, levels: vec![0; n_cores], placer: AffinityPlacer::new() }
    }

    /// Current per-core V/f level indices (for inspection in tests and
    /// reports).
    #[must_use]
    pub fn levels(&self) -> &[usize] {
        &self.levels
    }
}

impl Policy for DvfsTt {
    fn name(&self) -> &str {
        "DVFS_TT"
    }

    fn place_job(
        &mut self,
        job: &Job,
        _obs: &Observation<'_>,
        queue_hint: &QueueHint<'_>,
    ) -> CoreId {
        self.placer.place(job, queue_hint)
    }

    fn control(&mut self, obs: &Observation<'_>) -> ControlDecision {
        assert_eq!(obs.n_cores(), self.levels.len(), "core count changed mid-run");
        for (i, &t) in obs.core_temps_c.iter().enumerate() {
            self.levels[i] = if t > self.threshold_c {
                self.vf.step_down(self.levels[i])
            } else {
                self.vf.step_up(self.levels[i])
            };
        }
        ControlDecision {
            commands: self.levels.iter().map(|&l| CoreCommand::at_level(l)).collect(),
            migrations: Vec::new(),
        }
    }
}

/// Utilization-driven DVFS (`DVFS_Util`): each interval, set the slowest
/// V/f level whose frequency still covers the core's observed utilization
/// (a performance-oriented policy, analogous to the global power/thermal
/// budgeting of Zhu et al. but driven by utilization instead of IPC).
#[derive(Debug, Clone)]
pub struct DvfsUtil {
    vf: VfTable,
    placer: AffinityPlacer,
}

impl DvfsUtil {
    /// Creates the policy with the paper's V/f table.
    #[must_use]
    pub fn new() -> Self {
        Self::with_table(VfTable::paper_default())
    }

    /// Creates the policy with a custom table.
    #[must_use]
    pub fn with_table(vf: VfTable) -> Self {
        Self { vf, placer: AffinityPlacer::new() }
    }
}

impl Default for DvfsUtil {
    fn default() -> Self {
        Self::new()
    }
}

impl Policy for DvfsUtil {
    fn name(&self) -> &str {
        "DVFS_Util"
    }

    fn place_job(
        &mut self,
        job: &Job,
        _obs: &Observation<'_>,
        queue_hint: &QueueHint<'_>,
    ) -> CoreId {
        self.placer.place(job, queue_hint)
    }

    fn control(&mut self, obs: &Observation<'_>) -> ControlDecision {
        let commands = obs
            .utilization
            .iter()
            .zip(obs.queue_len)
            .map(|(&u, &qlen)| {
                // A backlogged queue needs full speed regardless of what
                // the core managed to burn last interval.
                let demand = if qlen > 1 { 1.0 } else { u };
                CoreCommand::at_level(self.vf.slowest_meeting(demand))
            })
            .collect();
        ControlDecision { commands, migrations: Vec::new() }
    }
}

/// Floorplan-aware DVFS (`DVFS_FLP`): statically assigns lower V/f to
/// cores more susceptible to hot spots — central dies in 2D, and layers
/// further from the heat sink in 3D. Susceptibility is summarized by the
/// same per-core thermal indices Adapt3D uses.
#[derive(Debug, Clone)]
pub struct DvfsFlp {
    assignments: Vec<usize>,
    placer: AffinityPlacer,
}

impl DvfsFlp {
    /// Assigns levels from per-core thermal indices `α` (higher = more
    /// hot-spot prone): the most susceptible third runs at the slowest
    /// level, the middle third one step down, the rest at the default.
    ///
    /// # Panics
    ///
    /// Panics if `alphas` is empty.
    #[must_use]
    pub fn from_thermal_indices(alphas: &[f64], vf: &VfTable) -> Self {
        assert!(!alphas.is_empty(), "need at least one core");
        let n = alphas.len();
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| alphas[b].total_cmp(&alphas[a])); // hottest first
        let mut assignments = vec![0usize; n];
        for (rank, &core) in order.iter().enumerate() {
            let tercile = rank * 3 / n.max(1);
            assignments[core] = match tercile {
                0 => vf.lowest(),
                1 => vf.lowest().saturating_sub(1).max(vf.highest()),
                _ => vf.highest(),
            };
        }
        Self { assignments, placer: AffinityPlacer::new() }
    }

    /// The static per-core level assignment.
    #[must_use]
    pub fn assignments(&self) -> &[usize] {
        &self.assignments
    }
}

impl Policy for DvfsFlp {
    fn name(&self) -> &str {
        "DVFS_FLP"
    }

    fn place_job(
        &mut self,
        job: &Job,
        _obs: &Observation<'_>,
        queue_hint: &QueueHint<'_>,
    ) -> CoreId {
        self.placer.place(job, queue_hint)
    }

    fn control(&mut self, obs: &Observation<'_>) -> ControlDecision {
        assert_eq!(obs.n_cores(), self.assignments.len(), "core count changed mid-run");
        ControlDecision {
            commands: self.assignments.iter().map(|&l| CoreCommand::at_level(l)).collect(),
            migrations: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs<'a>(
        temps: &'a [f64],
        util: &'a [f64],
        qlen: &'a [usize],
        work: &'a [f64],
        idle: &'a [f64],
    ) -> Observation<'a> {
        Observation {
            now_s: 0.0,
            tick_s: 0.1,
            core_temps_c: temps,
            utilization: util,
            queue_len: qlen,
            queued_work_s: work,
            idle_time_s: idle,
        }
    }

    #[test]
    fn cgate_gates_above_threshold_only() {
        let mut p = CGate::new();
        let temps = [86.0, 80.0];
        let d = p.control(&obs(&temps, &[1.0, 1.0], &[1, 1], &[0.1, 0.1], &[0.0, 0.0]));
        assert!(d.commands[0].gated);
        assert!(!d.commands[1].gated);
    }

    #[test]
    fn dvfs_tt_steps_down_then_recovers() {
        let mut p = DvfsTt::new(1);
        let hot = [90.0];
        let cool = [70.0];
        let u = [1.0];
        let q = [1usize];
        let w = [0.1];
        let idle = [0.0];
        p.control(&obs(&hot, &u, &q, &w, &idle));
        assert_eq!(p.levels(), &[1]);
        p.control(&obs(&hot, &u, &q, &w, &idle));
        assert_eq!(p.levels(), &[2], "keeps stepping down while hot");
        p.control(&obs(&hot, &u, &q, &w, &idle));
        assert_eq!(p.levels(), &[2], "saturates at the slowest level");
        p.control(&obs(&cool, &u, &q, &w, &idle));
        assert_eq!(p.levels(), &[1], "one step up per interval when cool");
        p.control(&obs(&cool, &u, &q, &w, &idle));
        assert_eq!(p.levels(), &[0]);
    }

    #[test]
    fn dvfs_util_matches_load() {
        let mut p = DvfsUtil::new();
        let temps = [70.0; 3];
        let util = [0.1, 0.9, 1.0];
        let qlen = [1usize, 1, 1];
        let work = [0.0; 3];
        let idle = [0.0; 3];
        let d = p.control(&obs(&temps, &util, &qlen, &work, &idle));
        assert_eq!(d.commands[0].vf_index, 2, "light load → slowest");
        assert_eq!(d.commands[1].vf_index, 1);
        assert_eq!(d.commands[2].vf_index, 0);
    }

    #[test]
    fn dvfs_util_full_speed_for_backlog() {
        let mut p = DvfsUtil::new();
        let temps = [70.0];
        let util = [0.2]; // looks light…
        let qlen = [5usize]; // …but the queue is backed up
        let work = [2.0];
        let idle = [0.0];
        let d = p.control(&obs(&temps, &util, &qlen, &work, &idle));
        assert_eq!(d.commands[0].vf_index, 0);
    }

    #[test]
    fn dvfs_flp_slows_susceptible_cores() {
        let vf = VfTable::paper_default();
        // Cores 4,5 on an upper layer (high α), 0..3 near the sink.
        let alphas = [0.2, 0.25, 0.3, 0.35, 0.8, 0.85];
        let p = DvfsFlp::from_thermal_indices(&alphas, &vf);
        assert_eq!(p.assignments()[5], 2, "most susceptible at slowest level");
        assert_eq!(p.assignments()[4], 2);
        assert_eq!(p.assignments()[0], 0, "least susceptible at default");
        assert_eq!(p.assignments()[1], 0);
    }

    #[test]
    fn placement_is_load_balancing_for_all() {
        let job = therm3d_workload::Job::new(0, 0.0, 1.0, 0.5, therm3d_workload::Benchmark::Gcc);
        let temps = [50.0, 90.0];
        let o = obs(&temps, &[0.0, 0.0], &[0, 0], &[0.0, 0.5], &[0.0, 0.0]);
        let hint = QueueHint { queued_work_s: &[0.4, 0.0], queue_len: &[1, 0] };
        assert_eq!(CGate::new().place_job(&job, &o, &hint), CoreId(1));
        assert_eq!(DvfsTt::new(2).place_job(&job, &o, &hint), CoreId(1));
        assert_eq!(DvfsUtil::new().place_job(&job, &o, &hint), CoreId(1));
        let mut flp = DvfsFlp::from_thermal_indices(&[0.3, 0.7], &VfTable::paper_default());
        assert_eq!(flp.place_job(&job, &o, &hint), CoreId(1));
    }
}
