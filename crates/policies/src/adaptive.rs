//! The adaptive probabilistic allocators: `Adaptive-Random` (Coskun et
//! al., DATE'07) and the paper's contribution `Adapt3D` (Section III-B).
//!
//! Both maintain a probability `P_t` per core for receiving new workload
//! and update it every scheduling interval from the temperature history:
//!
//! ```text
//! P_t    = P_{t−1} + W
//! W_diff = T_pref − T_avg
//! W      = β_inc · W_diff · (1/α_i)   if T_pref ≥ T_avg
//!        = β_dec · W_diff · α_i       otherwise
//! ```
//!
//! with `T_avg` the mean over a sliding history window (10 samples = 1 s at
//! the paper's 100 ms sampling), `T_pref = 80 °C`, `β_inc = 0.01`,
//! `β_dec = 0.1`. Probabilities are re-normalized to sum to 1 each step,
//! and a core that exceeded the 85 °C threshold in the last interval has
//! its probability forced to zero. Adapt3D distinguishes core locations via
//! the thermal index `α_i ∈ (0, 1]` (higher = more hot-spot prone: layers
//! far from the sink, central positions); Adaptive-Random is the special
//! case `α_i = 1` with a single β.

use std::collections::VecDeque;

use therm3d_floorplan::CoreId;
use therm3d_workload::Job;

use crate::lfsr::Lfsr16;
use crate::policy::{ControlDecision, Observation, Policy, QueueHint};

/// Tunable constants of the adaptive allocators.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveConfig {
    /// β when increasing probabilities (paper: 0.01).
    pub beta_inc: f64,
    /// β when decreasing probabilities (paper: 0.1).
    pub beta_dec: f64,
    /// Sliding history window length in samples (paper: 10).
    pub history_window: usize,
    /// Preferred operating temperature, °C (paper: 80).
    pub t_pref_c: f64,
    /// Thermal-emergency threshold, °C (paper: 85).
    pub threshold_c: f64,
    /// Scheduler-side guard on queue imbalance: a core whose queued work
    /// exceeds the emptiest queue by more than this many seconds is
    /// excluded from the probability draw. Bounds the queueing delay the
    /// thermal preference can introduce (the knob behind the paper's
    /// "negligible performance overhead" claim); `f64::INFINITY` disables
    /// the guard for pure Eq. 1–3 sampling.
    pub backlog_cutoff_s: f64,
}

impl AdaptiveConfig {
    /// The paper's parameterization.
    #[must_use]
    pub fn paper_default() -> Self {
        Self {
            beta_inc: 0.01,
            beta_dec: 0.1,
            history_window: 10,
            t_pref_c: 80.0,
            threshold_c: 85.0,
            backlog_cutoff_s: 2.0,
        }
    }

    fn validate(&self) {
        assert!(self.beta_inc > 0.0, "beta_inc must be positive");
        assert!(self.beta_dec > 0.0, "beta_dec must be positive");
        assert!(self.history_window > 0, "history window must be non-empty");
        assert!(
            self.t_pref_c < self.threshold_c,
            "preferred temperature must sit below the emergency threshold"
        );
        assert!(self.backlog_cutoff_s > 0.0, "backlog cutoff must be positive");
    }
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Temperature-history-driven probabilistic job allocation: both
/// `AdaptRand` and `Adapt3D`, selected by constructor.
///
/// # Examples
///
/// ```
/// use therm3d_policies::{AdaptivePolicy, Policy};
///
/// // Adapt3D for a 2-layer system: layer-1 cores carry larger indices.
/// let alphas = vec![0.3, 0.3, 0.7, 0.7];
/// let p = AdaptivePolicy::adapt3d(alphas, 0xC0DE);
/// assert_eq!(p.name(), "Adapt3D");
/// assert_eq!(p.probabilities().len(), 4);
/// ```
#[derive(Debug, Clone)]
pub struct AdaptivePolicy {
    name: &'static str,
    cfg: AdaptiveConfig,
    /// Thermal index per core, `(0, 1]`.
    alphas: Vec<f64>,
    /// Allocation probability per core (non-negative, sums to 1 unless all
    /// cores are in emergency).
    probs: Vec<f64>,
    history: Vec<VecDeque<f64>>,
    rng: Lfsr16,
    /// Runtime α calibration state (None = static offline indices).
    runtime_alpha: Option<RuntimeAlpha>,
}

/// Runtime thermal-index calibration (Section III-B: the indices "can be
/// set/updated at runtime by looking at the temperature history. To
/// determine the thermal index values at runtime, a larger history
/// window (e.g. several minutes) needs to be observed").
#[derive(Debug, Clone)]
struct RuntimeAlpha {
    /// Samples between α recomputations.
    update_every: usize,
    /// Long-run accumulated temperature per core.
    sums: Vec<f64>,
    /// Samples accumulated so far.
    count: usize,
}

impl RuntimeAlpha {
    /// Recomputes thermal indices from the long-run mean temperatures:
    /// the same mean-0.5 normalization as
    /// `Stack3d::default_thermal_indices`, driven by measured data
    /// instead of geometry. Returns `None` until the window has filled
    /// or if the chip shows no spatial contrast yet.
    fn recalibrated(&self) -> Option<Vec<f64>> {
        if self.count < self.update_every {
            return None;
        }
        let means: Vec<f64> = self.sums.iter().map(|s| s / self.count as f64).collect();
        let lo = means.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = means.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        if hi - lo < 0.5 {
            return None; // no contrast to learn from yet
        }
        // Scores in [0.2, 0.8] by min-max, then normalized to mean 0.5.
        let scores: Vec<f64> = means.iter().map(|&m| 0.2 + 0.6 * (m - lo) / (hi - lo)).collect();
        let mean_score: f64 = scores.iter().sum::<f64>() / scores.len() as f64;
        Some(scores.iter().map(|s| (0.5 * s / mean_score).clamp(0.05, 0.95)).collect())
    }
}

impl AdaptivePolicy {
    /// The Adaptive-Random policy of DATE'07: no layer awareness
    /// (`α_i = 1`), symmetric β of 0.05.
    #[must_use]
    pub fn adapt_rand(n_cores: usize, seed: u16) -> Self {
        let cfg =
            AdaptiveConfig { beta_inc: 0.05, beta_dec: 0.05, ..AdaptiveConfig::paper_default() };
        Self::build("AdaptRand", vec![1.0; n_cores], cfg, seed)
    }

    /// The paper's Adapt3D with its default constants and the given
    /// per-core thermal indices (see
    /// [`therm3d_floorplan::Stack3d::default_thermal_indices`]).
    ///
    /// # Panics
    ///
    /// Panics if `alphas` is empty or any index is outside `(0, 1]`.
    #[must_use]
    pub fn adapt3d(alphas: Vec<f64>, seed: u16) -> Self {
        Self::build("Adapt3D", alphas, AdaptiveConfig::paper_default(), seed)
    }

    /// Adapt3D with custom constants (for the ablation benches).
    ///
    /// # Panics
    ///
    /// Panics if `alphas` is empty, any index is outside `(0, 1]`, or the
    /// config is inconsistent.
    #[must_use]
    pub fn adapt3d_with_config(alphas: Vec<f64>, cfg: AdaptiveConfig, seed: u16) -> Self {
        Self::build("Adapt3D", alphas, cfg, seed)
    }

    /// Adapt3D with **runtime** thermal-index calibration: α starts
    /// uniform at 0.5 and is recomputed every `update_every` samples from
    /// the accumulated long-run mean temperature of each core (the
    /// paper's dynamic alternative to offline indices; it reports "the
    /// results were very similar for both options", which the
    /// `alpha_study` ablation binary verifies).
    ///
    /// # Panics
    ///
    /// Panics if `n_cores` or `update_every` is zero.
    #[must_use]
    pub fn adapt3d_runtime_alpha(n_cores: usize, update_every: usize, seed: u16) -> Self {
        assert!(n_cores > 0, "need at least one core");
        assert!(update_every > 0, "update interval must be non-empty");
        let mut p =
            Self::build("Adapt3D", vec![0.5; n_cores], AdaptiveConfig::paper_default(), seed);
        p.runtime_alpha = Some(RuntimeAlpha { update_every, sums: vec![0.0; n_cores], count: 0 });
        p
    }

    fn build(name: &'static str, alphas: Vec<f64>, cfg: AdaptiveConfig, seed: u16) -> Self {
        assert!(!alphas.is_empty(), "need at least one core");
        for (i, &a) in alphas.iter().enumerate() {
            assert!(a > 0.0 && a <= 1.0, "thermal index α[{i}] = {a} must be in (0, 1]");
        }
        cfg.validate();
        // Initial probabilities encode the offline thermal indices: a
        // hot-spot-prone core starts with a proportionally lower chance of
        // receiving work, so the very first bursts already land on the
        // well-cooled cores instead of waiting for the temperature
        // feedback to discover the asymmetry. For Adaptive-Random
        // (α_i = 1) this reduces to the uniform distribution.
        let mut probs: Vec<f64> = alphas.iter().map(|&a| 1.0 - 0.8 * a).collect();
        let total: f64 = probs.iter().sum();
        for p in &mut probs {
            *p /= total;
        }
        let n = alphas.len();
        Self {
            name,
            cfg,
            alphas,
            probs,
            history: vec![VecDeque::with_capacity(cfg.history_window); n],
            rng: Lfsr16::new(seed),
            runtime_alpha: None,
        }
    }

    /// Current allocation probabilities (sum to 1 unless every core is in
    /// thermal emergency).
    #[must_use]
    pub fn probabilities(&self) -> &[f64] {
        &self.probs
    }

    /// The thermal indices in use.
    #[must_use]
    pub fn thermal_indices(&self) -> &[f64] {
        &self.alphas
    }

    /// One probability update from fresh sensor readings (Equations 1–3).
    fn update_probabilities(&mut self, temps_c: &[f64]) {
        assert_eq!(temps_c.len(), self.probs.len(), "core count changed mid-run");
        // Runtime α: accumulate the long-run history and periodically
        // refresh the indices from it.
        if let Some(ra) = &mut self.runtime_alpha {
            for (s, &t) in ra.sums.iter_mut().zip(temps_c) {
                *s += t;
            }
            ra.count += 1;
            if ra.count % ra.update_every == 0 {
                if let Some(alphas) = ra.recalibrated() {
                    self.alphas = alphas;
                }
            }
        }
        for (i, &t) in temps_c.iter().enumerate() {
            let h = &mut self.history[i];
            if h.len() == self.cfg.history_window {
                h.pop_front();
            }
            h.push_back(t);
        }
        // Cores below the emergency threshold keep a small probability
        // floor. Without it, a chip running hotter than T_pref everywhere
        // (sustained saturation on the 4-layer stacks) drives every P to
        // the zero floor and renormalization concentrates all arrivals on
        // whichever core decayed last — serializing the workload. The
        // floor makes the degenerate regime rotate work across the
        // non-emergency cores instead, preserving the paper's
        // "negligible performance overhead" property.
        let floor = 0.1 / self.probs.len() as f64;
        let (cfg, history, alphas) = (&self.cfg, &self.history, &self.alphas);
        for (i, p) in self.probs.iter_mut().enumerate() {
            let h = &history[i];
            let t_avg: f64 = h.iter().sum::<f64>() / h.len() as f64;
            let w_diff = cfg.t_pref_c - t_avg;
            let w = if w_diff >= 0.0 {
                cfg.beta_inc * w_diff / alphas[i]
            } else {
                cfg.beta_dec * w_diff * alphas[i]
            };
            *p = (*p + w).max(floor);
            // Emergency: a core above the threshold in the last interval
            // must not receive new work.
            if temps_c[i] > cfg.threshold_c {
                *p = 0.0;
            }
        }
        let total: f64 = self.probs.iter().sum();
        if total > 0.0 {
            for p in &mut self.probs {
                *p /= total;
            }
        } else {
            // Every probability decayed to zero (the whole chip is warm).
            // Redistribute mass over the cores below the emergency
            // threshold, favouring the coolest, so the policy keeps
            // steering rather than degenerating permanently.
            let t_max = temps_c.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            let mut sum = 0.0;
            for (p, &t) in self.probs.iter_mut().zip(temps_c) {
                *p = if t > self.cfg.threshold_c { 0.0 } else { t_max - t + 0.5 };
                sum += *p;
            }
            if sum > 0.0 {
                for p in &mut self.probs {
                    *p /= sum;
                }
            }
        }
    }
}

impl Policy for AdaptivePolicy {
    fn name(&self) -> &str {
        self.name
    }

    fn place_job(
        &mut self,
        _job: &Job,
        obs: &Observation<'_>,
        queue_hint: &QueueHint<'_>,
    ) -> CoreId {
        // Eq. 1–3 sampling: allocation follows the probability values. The
        // temperature feedback self-limits overload — a core that
        // accumulates work warms past T_pref, its probability decays, and
        // arrivals shift elsewhere. One scheduler-side guard keeps the
        // paper's "negligible performance overhead" property: a core whose
        // backlog exceeds the emptiest queue by more than the configured
        // cutoff is excluded from this draw, bounding the queueing delay
        // the thermal preference can introduce.
        let cutoff = self.cfg.backlog_cutoff_s;
        let min_work = queue_hint.queued_work_s.iter().copied().fold(f64::INFINITY, f64::min);
        let weighted: Vec<f64> = self
            .probs
            .iter()
            .zip(queue_hint.queued_work_s)
            .map(|(&p, &w)| if w - min_work > cutoff { 0.0 } else { p })
            .collect();
        if let Some(i) = self.rng.sample_weighted(&weighted) {
            return CoreId(i);
        }
        // Every candidate is zero (chip-wide emergency with saturated
        // queues): the dispatcher load-balances as the OS default would.
        let _ = obs;
        queue_hint.least_loaded()
    }

    fn control(&mut self, obs: &Observation<'_>) -> ControlDecision {
        self.update_probabilities(obs.core_temps_c);
        ControlDecision::run_all(obs.n_cores())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs<'a>(temps: &'a [f64]) -> Observation<'a> {
        Observation {
            now_s: 0.0,
            tick_s: 0.1,
            core_temps_c: temps,
            utilization: &[0.0; 8][..temps.len()],
            queue_len: &[0; 8][..temps.len()],
            queued_work_s: &[0.0; 8][..temps.len()],
            idle_time_s: &[0.0; 8][..temps.len()],
        }
    }

    #[test]
    fn probabilities_stay_normalized() {
        let mut p = AdaptivePolicy::adapt3d(vec![0.3, 0.5, 0.7, 0.9], 1);
        for step in 0..50 {
            let temps = [70.0 + step as f64 * 0.2, 75.0, 82.0, 88.0];
            p.control(&obs(&temps));
            let sum: f64 = p.probabilities().iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "step {step}: sum {sum}");
            assert!(p.probabilities().iter().all(|&x| x >= 0.0));
        }
    }

    #[test]
    fn emergency_core_gets_zero_probability() {
        let mut p = AdaptivePolicy::adapt3d(vec![0.5, 0.5], 1);
        p.control(&obs(&[90.0, 60.0]));
        assert_eq!(p.probabilities()[0], 0.0);
        assert!((p.probabilities()[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cooler_cores_gain_probability() {
        let mut p = AdaptivePolicy::adapt3d(vec![0.5, 0.5], 1);
        // Core 0 well above T_pref, core 1 well below.
        for _ in 0..20 {
            p.control(&obs(&[84.0, 60.0]));
        }
        assert!(p.probabilities()[1] > 0.8, "cool core should dominate: {:?}", p.probabilities());
    }

    #[test]
    fn higher_alpha_decreases_faster_when_hot() {
        // Same temperatures, different α: the more susceptible core's
        // probability must fall faster (W = β_dec·W_diff·α).
        let mut p = AdaptivePolicy::adapt3d(vec![0.2, 0.8, 0.5], 1);
        for _ in 0..2 {
            p.control(&obs(&[84.0, 84.0, 40.0]));
        }
        let probs = p.probabilities();
        assert!(probs[0] > probs[1], "low-α core keeps more probability: {probs:?}");
    }

    #[test]
    fn higher_alpha_increases_slower_when_cool() {
        // Both cool: W = β_inc·W_diff/α, so the low-α core gains faster.
        let mut p = AdaptivePolicy::adapt3d(vec![0.2, 0.8], 1);
        for _ in 0..5 {
            p.control(&obs(&[60.0, 60.0]));
        }
        let probs = p.probabilities();
        assert!(probs[0] > probs[1], "{probs:?}");
    }

    #[test]
    fn adapt_rand_ignores_location() {
        // Equal temperatures keep probabilities equal regardless of
        // anything else.
        let mut p = AdaptivePolicy::adapt_rand(4, 1);
        for _ in 0..10 {
            p.control(&obs(&[70.0; 4]));
        }
        for &x in p.probabilities() {
            assert!((x - 0.25).abs() < 1e-9, "{:?}", p.probabilities());
        }
    }

    #[test]
    fn placement_avoids_zero_probability_cores() {
        let mut p = AdaptivePolicy::adapt3d(vec![0.5, 0.5], 7);
        p.control(&obs(&[90.0, 60.0])); // core 0 in emergency
        let job = therm3d_workload::Job::new(0, 0.0, 1.0, 0.5, therm3d_workload::Benchmark::Gcc);
        let temps = [90.0, 60.0];
        let o = obs(&temps);
        let hint = QueueHint { queued_work_s: &[0.0, 0.0], queue_len: &[0, 0] };
        for _ in 0..50 {
            assert_eq!(p.place_job(&job, &o, &hint), CoreId(1));
        }
    }

    #[test]
    fn all_emergency_falls_back_to_coolest() {
        let mut p = AdaptivePolicy::adapt3d(vec![0.5, 0.5], 7);
        p.control(&obs(&[90.0, 92.0]));
        let job = therm3d_workload::Job::new(0, 0.0, 1.0, 0.5, therm3d_workload::Benchmark::Gcc);
        let temps = [90.0, 92.0];
        let o = obs(&temps);
        let hint = QueueHint { queued_work_s: &[0.0, 0.0], queue_len: &[0, 0] };
        assert_eq!(p.place_job(&job, &o, &hint), CoreId(0), "coolest of the hot");
    }

    #[test]
    fn deterministic_for_same_seed() {
        let run = |seed| {
            let mut p = AdaptivePolicy::adapt3d(vec![0.4, 0.6], seed);
            let job =
                therm3d_workload::Job::new(0, 0.0, 1.0, 0.5, therm3d_workload::Benchmark::Gcc);
            let temps = [70.0, 72.0];
            let o = obs(&temps);
            let hint = QueueHint { queued_work_s: &[0.0, 0.0], queue_len: &[0, 0] };
            let mut picks = Vec::new();
            for _ in 0..20 {
                p.control(&o);
                picks.push(p.place_job(&job, &o, &hint).0);
            }
            picks
        };
        assert_eq!(run(5), run(5));
    }

    #[test]
    #[should_panic(expected = "thermal index")]
    fn alpha_out_of_range_rejected() {
        let _ = AdaptivePolicy::adapt3d(vec![0.5, 1.5], 1);
    }

    #[test]
    fn history_window_smooths_updates() {
        // A single hot sample inside a long cool history barely moves
        // T_avg, so the probability drop is small.
        let mut p = AdaptivePolicy::adapt3d(vec![0.5, 0.5], 1);
        for _ in 0..9 {
            p.control(&obs(&[70.0, 70.0]));
        }
        let before = p.probabilities()[0];
        p.control(&obs(&[84.0, 70.0])); // one hot sample, below threshold
        let after = p.probabilities()[0];
        assert!((before - after).abs() < 0.1, "window damps single spikes");
    }
}

#[cfg(test)]
mod runtime_alpha_tests {
    use super::*;

    fn obs<'a>(temps: &'a [f64]) -> Observation<'a> {
        Observation {
            now_s: 0.0,
            tick_s: 0.1,
            core_temps_c: temps,
            utilization: &[0.0; 8][..temps.len()],
            queue_len: &[0; 8][..temps.len()],
            queued_work_s: &[0.0; 8][..temps.len()],
            idle_time_s: &[0.0; 8][..temps.len()],
        }
    }

    #[test]
    fn starts_uniform_and_learns_the_hot_core() {
        let mut p = AdaptivePolicy::adapt3d_runtime_alpha(3, 50, 1);
        assert_eq!(p.thermal_indices(), &[0.5, 0.5, 0.5]);
        // Core 2 consistently runs 15 °C hotter.
        for _ in 0..50 {
            p.control(&obs(&[65.0, 67.0, 80.0]));
        }
        let a = p.thermal_indices().to_vec();
        assert!(a[2] > a[0] && a[2] > a[1], "hot core must earn the top index: {a:?}");
        assert!(a.iter().all(|&x| (0.05..=0.95).contains(&x)));
        let mean: f64 = a.iter().sum::<f64>() / 3.0;
        assert!((mean - 0.5).abs() < 0.05, "normalization keeps the mean near 0.5");
    }

    #[test]
    fn no_contrast_keeps_uniform_indices() {
        let mut p = AdaptivePolicy::adapt3d_runtime_alpha(4, 20, 1);
        for _ in 0..60 {
            p.control(&obs(&[70.0, 70.0, 70.0, 70.0]));
        }
        assert_eq!(p.thermal_indices(), &[0.5, 0.5, 0.5, 0.5], "isothermal chip learns nothing");
    }

    #[test]
    fn update_happens_only_at_the_interval() {
        let mut p = AdaptivePolicy::adapt3d_runtime_alpha(2, 30, 1);
        for _ in 0..29 {
            p.control(&obs(&[60.0, 90.0]));
        }
        assert_eq!(p.thermal_indices(), &[0.5, 0.5], "window not full yet");
        p.control(&obs(&[60.0, 90.0]));
        assert!(p.thermal_indices()[1] > p.thermal_indices()[0]);
    }

    #[test]
    #[should_panic(expected = "update interval")]
    fn zero_interval_rejected() {
        let _ = AdaptivePolicy::adapt3d_runtime_alpha(4, 0, 1);
    }
}
