//! The job migration policy (`Migr`, Section III-B): move the running job
//! off any core that crosses the thermal threshold onto the coolest core
//! that has not yet received a migrated job this tick, swapping when the
//! target is busy.

use therm3d_floorplan::CoreId;
use therm3d_workload::Job;

use crate::baseline::AffinityPlacer;
use crate::dvfs::DEFAULT_THRESHOLD_C;
use crate::policy::{ControlDecision, Observation, Policy, QueueHint};

/// Temperature-triggered job migration, an extension of core-hopping /
/// activity-migration techniques (Heo et al., Heat-and-Run).
#[derive(Debug, Clone)]
pub struct Migration {
    threshold_c: f64,
    placer: AffinityPlacer,
}

impl Migration {
    /// Creates the policy with the paper's 85 °C threshold.
    #[must_use]
    pub fn new() -> Self {
        Self::with_threshold(DEFAULT_THRESHOLD_C)
    }

    /// Creates the policy with a custom threshold.
    #[must_use]
    pub fn with_threshold(threshold_c: f64) -> Self {
        Self { threshold_c, placer: AffinityPlacer::new() }
    }
}

impl Default for Migration {
    fn default() -> Self {
        Self::new()
    }
}

impl Policy for Migration {
    fn name(&self) -> &str {
        "Migr"
    }

    fn place_job(
        &mut self,
        job: &Job,
        _obs: &Observation<'_>,
        queue_hint: &QueueHint<'_>,
    ) -> CoreId {
        self.placer.place(job, queue_hint)
    }

    fn control(&mut self, obs: &Observation<'_>) -> ControlDecision {
        let n = obs.n_cores();
        let mut decision = ControlDecision::run_all(n);
        // Hot cores, hottest first, that actually hold a job to move.
        let mut hot: Vec<usize> = (0..n)
            .filter(|&i| obs.core_temps_c[i] > self.threshold_c && obs.queue_len[i] > 0)
            .collect();
        hot.sort_by(|&a, &b| obs.core_temps_c[b].total_cmp(&obs.core_temps_c[a]));

        // A core may receive at most one migrated job per scheduling tick,
        // and hot cores are not valid targets.
        let mut excluded = vec![false; n];
        for &i in &hot {
            excluded[i] = true;
        }
        for &from in &hot {
            let Some(to) = obs.coolest_core(&excluded) else { break };
            excluded[to.0] = true;
            decision.migrations.push((CoreId(from), to));
        }
        decision
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs<'a>(temps: &'a [f64], qlen: &'a [usize]) -> Observation<'a> {
        Observation {
            now_s: 0.0,
            tick_s: 0.1,
            core_temps_c: temps,
            utilization: &[0.0; 8][..temps.len()],
            queue_len: qlen,
            queued_work_s: &[0.0; 8][..temps.len()],
            idle_time_s: &[0.0; 8][..temps.len()],
        }
    }

    #[test]
    fn migrates_hot_to_coolest() {
        let mut p = Migration::new();
        let temps = [90.0, 60.0, 70.0, 50.0];
        let qlen = [1usize, 0, 0, 0];
        let d = p.control(&obs(&temps, &qlen));
        assert_eq!(d.migrations, vec![(CoreId(0), CoreId(3))]);
    }

    #[test]
    fn one_migration_per_target_per_tick() {
        let mut p = Migration::new();
        let temps = [95.0, 91.0, 50.0, 55.0];
        let qlen = [1usize, 1, 0, 0];
        let d = p.control(&obs(&temps, &qlen));
        // Hottest (core 0) gets the coolest target (core 2); core 1 the
        // next coolest (core 3).
        assert_eq!(d.migrations, vec![(CoreId(0), CoreId(2)), (CoreId(1), CoreId(3))]);
    }

    #[test]
    fn idle_hot_core_not_migrated() {
        let mut p = Migration::new();
        let temps = [90.0, 50.0];
        let qlen = [0usize, 0];
        let d = p.control(&obs(&temps, &qlen));
        assert!(d.migrations.is_empty());
    }

    #[test]
    fn no_target_when_all_hot() {
        let mut p = Migration::new();
        let temps = [90.0, 91.0];
        let qlen = [1usize, 1];
        let d = p.control(&obs(&temps, &qlen));
        assert!(d.migrations.is_empty(), "no cool core exists");
    }

    #[test]
    fn below_threshold_no_action() {
        let mut p = Migration::new();
        let temps = [84.0, 60.0];
        let qlen = [1usize, 0];
        let d = p.control(&obs(&temps, &qlen));
        assert!(d.migrations.is_empty());
    }
}
