//! Multi-queue scheduler state: per-core dispatch queues, execution
//! accounting and job migration — the OS-level substrate of Section IV-D.
//!
//! Modern OSes (the paper cites Solaris on the Niagara-1) keep one
//! dispatch queue per hardware context; the job scheduler enqueues
//! arriving threads per the active policy and each core executes its
//! queue in order. Migration moves the currently running job between
//! queues at a fixed cost (1 ms per migration, measured by the authors on
//! real hardware).

use std::collections::VecDeque;
use std::fmt;

use therm3d_floorplan::CoreId;
use therm3d_workload::Job;

/// Default migration cost in seconds (paper Section V-A: 1 ms).
pub const MIGRATION_COST_S: f64 = 1.0e-3;

/// A job resident on a core, with its remaining CPU demand.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResidentJob {
    /// The underlying job.
    pub job: Job,
    /// Remaining CPU seconds at the default frequency.
    pub remaining_s: f64,
    /// Pending non-progress stall from migrations, seconds of wall time.
    pub stall_s: f64,
}

/// A completed job with its completion timestamp.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompletedJob {
    /// The job that finished.
    pub job: Job,
    /// Completion time in simulation seconds.
    pub completed_s: f64,
}

impl CompletedJob {
    /// Turnaround time: completion − arrival.
    #[must_use]
    pub fn turnaround_s(&self) -> f64 {
        self.completed_s - self.job.arrival_s
    }
}

/// Per-core FIFO dispatch queues plus completion log.
///
/// # Examples
///
/// ```
/// use therm3d_floorplan::CoreId;
/// use therm3d_policies::queue::MultiQueue;
/// use therm3d_workload::{Benchmark, Job};
///
/// let mut mq = MultiQueue::new(2);
/// mq.enqueue(CoreId(0), Job::new(0, 0.0, 0.05, 0.3, Benchmark::Gcc));
/// // Run core 0 at full speed for a 100 ms tick: the job finishes.
/// let busy = mq.execute(CoreId(0), 0.1, 1.0, 0.1);
/// assert!(busy > 0.0);
/// assert_eq!(mq.completed().len(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct MultiQueue {
    queues: Vec<VecDeque<ResidentJob>>,
    completed: Vec<CompletedJob>,
    migrations: u64,
    /// When set, completions update the turnaround fold only and never
    /// reach the per-job log — O(1) memory over any simulated duration.
    discard_completed: bool,
    completed_count: usize,
    turnaround_total_s: f64,
    turnaround_max_s: f64,
}

impl MultiQueue {
    /// Creates queues for `n_cores` cores.
    #[must_use]
    pub fn new(n_cores: usize) -> Self {
        Self {
            queues: (0..n_cores).map(|_| VecDeque::new()).collect(),
            completed: Vec::new(),
            migrations: 0,
            discard_completed: false,
            completed_count: 0,
            turnaround_total_s: 0.0,
            turnaround_max_s: 0.0,
        }
    }

    /// Drops the per-job completion log: completions still feed the
    /// online turnaround fold ([`completed_count`](Self::completed_count),
    /// [`turnaround_total_s`](Self::turnaround_total_s),
    /// [`turnaround_max_s`](Self::turnaround_max_s)) but
    /// [`completed`](Self::completed) stays empty, so memory no longer
    /// grows with the number of jobs executed.
    #[must_use]
    pub fn without_completion_log(mut self) -> Self {
        self.discard_completed = true;
        self
    }

    /// Number of cores.
    #[must_use]
    pub fn n_cores(&self) -> usize {
        self.queues.len()
    }

    /// Enqueues a job at the back of `core`'s queue.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn enqueue(&mut self, core: CoreId, job: Job) {
        self.queues[core.0].push_back(ResidentJob { job, remaining_s: job.work_s, stall_s: 0.0 });
    }

    /// Number of jobs queued on `core` (including the running one).
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    #[must_use]
    pub fn queue_len(&self, core: CoreId) -> usize {
        self.queues[core.0].len()
    }

    /// Remaining CPU demand queued on `core`, seconds.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    #[must_use]
    pub fn queued_work_s(&self, core: CoreId) -> f64 {
        self.queues[core.0].iter().map(|r| r.remaining_s + r.stall_s).sum()
    }

    /// The job currently at the head of `core`'s queue, if any.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    #[must_use]
    pub fn running(&self, core: CoreId) -> Option<&ResidentJob> {
        self.queues[core.0].front()
    }

    /// Memory intensity of the head job (0 when idle); feeds the power
    /// model's crossbar term.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    #[must_use]
    pub fn memory_intensity(&self, core: CoreId) -> f64 {
        self.queues[core.0].front().map_or(0.0, |r| r.job.memory_intensity)
    }

    /// Executes `core` for `wall_dt` seconds of wall time at relative
    /// frequency `freq_scale` (0 models a stalled/gated core). Jobs that
    /// finish are moved to the completion log with timestamps interpolated
    /// within the tick starting at `tick_start_s`... the returned value is
    /// the busy wall time in `[0, wall_dt]` (the core's utilization for
    /// this tick is `busy / wall_dt`).
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range, `wall_dt` is not positive, or
    /// `freq_scale` is outside `[0, 1]`.
    pub fn execute(
        &mut self,
        core: CoreId,
        wall_dt: f64,
        freq_scale: f64,
        tick_start_s: f64,
    ) -> f64 {
        assert!(wall_dt > 0.0 && wall_dt.is_finite(), "wall_dt must be positive");
        assert!((0.0..=1.0).contains(&freq_scale), "freq scale must be in [0,1], got {freq_scale}");
        let q = &mut self.queues[core.0];
        let mut t = 0.0;
        while t < wall_dt - 1e-12 {
            let Some(front) = q.front_mut() else { break };
            // Pay any pending migration stall first (wall time, no
            // progress).
            if front.stall_s > 0.0 {
                let pay = front.stall_s.min(wall_dt - t);
                front.stall_s -= pay;
                t += pay;
                continue;
            }
            if freq_scale == 0.0 {
                // Stalled core: time passes, nothing progresses, but the
                // core is "busy" holding the job.
                t = wall_dt;
                break;
            }
            let wall_needed = front.remaining_s / freq_scale;
            let run = wall_needed.min(wall_dt - t);
            front.remaining_s -= run * freq_scale;
            t += run;
            if front.remaining_s <= 1e-12 {
                let done = q.pop_front().expect("front exists");
                let record = CompletedJob { job: done.job, completed_s: tick_start_s + t };
                // Fold in completion order: bit-identical to summing /
                // max-folding the log after the fact.
                self.completed_count += 1;
                let turnaround = record.turnaround_s();
                self.turnaround_total_s += turnaround;
                self.turnaround_max_s = self.turnaround_max_s.max(turnaround);
                if !self.discard_completed {
                    self.completed.push(record);
                }
            }
        }
        t.min(wall_dt)
    }

    /// Migrates the running job of `from` to `to`, swapping with `to`'s
    /// running job when `to` is busy (the paper's swap rule). Both moved
    /// jobs incur [`MIGRATION_COST_S`]. No-op if `from` is idle or
    /// `from == to`.
    ///
    /// Returns `true` if a migration happened.
    ///
    /// # Panics
    ///
    /// Panics if either core is out of range.
    pub fn migrate(&mut self, from: CoreId, to: CoreId) -> bool {
        if from == to {
            return false;
        }
        let Some(mut moving) = self.queues[from.0].pop_front() else {
            return false;
        };
        moving.stall_s += MIGRATION_COST_S;
        self.migrations += 1;
        if let Some(mut swapped) = self.queues[to.0].pop_front() {
            swapped.stall_s += MIGRATION_COST_S;
            self.migrations += 1;
            self.queues[from.0].push_front(swapped);
        }
        self.queues[to.0].push_front(moving);
        true
    }

    /// All completed jobs so far (always empty under
    /// [`without_completion_log`](Self::without_completion_log)).
    #[must_use]
    pub fn completed(&self) -> &[CompletedJob] {
        &self.completed
    }

    /// Number of jobs completed, log or no log.
    #[must_use]
    pub fn completed_count(&self) -> usize {
        self.completed_count
    }

    /// Sum of turnaround times over all completions, seconds.
    #[must_use]
    pub fn turnaround_total_s(&self) -> f64 {
        self.turnaround_total_s
    }

    /// Maximum turnaround time over all completions, seconds (0 before
    /// the first completion).
    #[must_use]
    pub fn turnaround_max_s(&self) -> f64 {
        self.turnaround_max_s
    }

    /// Total migrations performed.
    #[must_use]
    pub fn migration_count(&self) -> u64 {
        self.migrations
    }

    /// Jobs still resident across all queues.
    #[must_use]
    pub fn in_flight(&self) -> usize {
        self.queues.iter().map(VecDeque::len).sum()
    }

    /// Index of the core with the least queued work (ties broken by lower
    /// index) — the default load-balancing target.
    #[must_use]
    pub fn least_loaded(&self) -> CoreId {
        let mut best = 0;
        let mut best_w = f64::INFINITY;
        for c in 0..self.queues.len() {
            let w = self.queued_work_s(CoreId(c));
            if w < best_w {
                best_w = w;
                best = c;
            }
        }
        CoreId(best)
    }
}

impl fmt::Display for MultiQueue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "MultiQueue[{} cores, {} in flight, {} done, {} migrations]",
            self.n_cores(),
            self.in_flight(),
            self.completed_count,
            self.migrations
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use therm3d_workload::Benchmark;

    fn job(id: u64, work: f64) -> Job {
        Job::new(id, 0.0, work, 0.5, Benchmark::WebMed)
    }

    #[test]
    fn fifo_execution_and_completion() {
        let mut mq = MultiQueue::new(1);
        mq.enqueue(CoreId(0), job(0, 0.05));
        mq.enqueue(CoreId(0), job(1, 0.03));
        let busy = mq.execute(CoreId(0), 0.1, 1.0, 0.0);
        assert!((busy - 0.08).abs() < 1e-9);
        assert_eq!(mq.completed().len(), 2);
        assert!((mq.completed()[0].completed_s - 0.05).abs() < 1e-9);
        assert!((mq.completed()[1].completed_s - 0.08).abs() < 1e-9);
        assert_eq!(mq.in_flight(), 0);
    }

    #[test]
    fn partial_progress_carries_over() {
        let mut mq = MultiQueue::new(1);
        mq.enqueue(CoreId(0), job(0, 0.25));
        let busy = mq.execute(CoreId(0), 0.1, 1.0, 0.0);
        assert!((busy - 0.1).abs() < 1e-12);
        assert!((mq.queued_work_s(CoreId(0)) - 0.15).abs() < 1e-9);
        mq.execute(CoreId(0), 0.1, 1.0, 0.1);
        let busy = mq.execute(CoreId(0), 0.1, 1.0, 0.2);
        assert!((busy - 0.05).abs() < 1e-9);
        assert_eq!(mq.completed().len(), 1);
        assert!((mq.completed()[0].completed_s - 0.25).abs() < 1e-9);
    }

    #[test]
    fn frequency_scaling_stretches_execution() {
        let mut mq = MultiQueue::new(1);
        mq.enqueue(CoreId(0), job(0, 0.085));
        // At 85 % frequency, 0.085 s of work takes 0.1 s of wall time.
        let busy = mq.execute(CoreId(0), 0.1, 0.85, 0.0);
        assert!((busy - 0.1).abs() < 1e-9);
        assert_eq!(mq.completed().len(), 1);
    }

    #[test]
    fn gated_core_makes_no_progress() {
        let mut mq = MultiQueue::new(1);
        mq.enqueue(CoreId(0), job(0, 0.05));
        let busy = mq.execute(CoreId(0), 0.1, 0.0, 0.0);
        assert!((busy - 0.1).abs() < 1e-12, "stalled but occupied");
        assert_eq!(mq.completed().len(), 0);
        assert!((mq.queued_work_s(CoreId(0)) - 0.05).abs() < 1e-12);
    }

    #[test]
    fn idle_core_reports_zero_busy() {
        let mut mq = MultiQueue::new(2);
        assert_eq!(mq.execute(CoreId(1), 0.1, 1.0, 0.0), 0.0);
    }

    #[test]
    fn migration_moves_and_stalls() {
        let mut mq = MultiQueue::new(2);
        mq.enqueue(CoreId(0), job(0, 0.05));
        assert!(mq.migrate(CoreId(0), CoreId(1)));
        assert_eq!(mq.queue_len(CoreId(0)), 0);
        assert_eq!(mq.queue_len(CoreId(1)), 1);
        assert_eq!(mq.migration_count(), 1);
        // The 1 ms stall delays completion: 0.05 work + 0.001 stall.
        let busy = mq.execute(CoreId(1), 0.1, 1.0, 0.0);
        assert!((busy - 0.051).abs() < 1e-9);
        assert!((mq.completed()[0].completed_s - 0.051).abs() < 1e-9);
    }

    #[test]
    fn migration_swaps_when_target_busy() {
        let mut mq = MultiQueue::new(2);
        mq.enqueue(CoreId(0), job(0, 0.05));
        mq.enqueue(CoreId(1), job(1, 0.07));
        assert!(mq.migrate(CoreId(0), CoreId(1)));
        assert_eq!(mq.migration_count(), 2, "swap costs two migrations");
        assert_eq!(mq.running(CoreId(0)).unwrap().job.id, 1);
        assert_eq!(mq.running(CoreId(1)).unwrap().job.id, 0);
    }

    #[test]
    fn migrate_idle_or_self_is_noop() {
        let mut mq = MultiQueue::new(2);
        assert!(!mq.migrate(CoreId(0), CoreId(1)));
        mq.enqueue(CoreId(0), job(0, 0.05));
        assert!(!mq.migrate(CoreId(0), CoreId(0)));
        assert_eq!(mq.migration_count(), 0);
    }

    #[test]
    fn least_loaded_picks_minimum_work() {
        let mut mq = MultiQueue::new(3);
        mq.enqueue(CoreId(0), job(0, 0.5));
        mq.enqueue(CoreId(2), job(1, 0.1));
        assert_eq!(mq.least_loaded(), CoreId(1));
        mq.enqueue(CoreId(1), job(2, 0.9));
        assert_eq!(mq.least_loaded(), CoreId(2));
    }

    #[test]
    fn memory_intensity_follows_head_job() {
        let mut mq = MultiQueue::new(1);
        assert_eq!(mq.memory_intensity(CoreId(0)), 0.0);
        mq.enqueue(CoreId(0), Job::new(0, 0.0, 1.0, 0.9, Benchmark::WebHigh));
        assert!((mq.memory_intensity(CoreId(0)) - 0.9).abs() < 1e-12);
    }

    #[test]
    fn online_fold_matches_completion_log() {
        let mut logged = MultiQueue::new(2);
        let mut folded = MultiQueue::new(2).without_completion_log();
        for mq in [&mut logged, &mut folded] {
            mq.enqueue(CoreId(0), Job::new(0, 0.0, 0.05, 0.5, Benchmark::Gcc));
            mq.enqueue(CoreId(0), Job::new(1, 0.02, 0.03, 0.5, Benchmark::Gcc));
            mq.enqueue(CoreId(1), Job::new(2, 0.0, 0.25, 0.5, Benchmark::Gcc));
            for tick in 0..3 {
                let t0 = tick as f64 * 0.1;
                mq.execute(CoreId(0), 0.1, 1.0, t0);
                mq.execute(CoreId(1), 0.1, 1.0, t0);
            }
        }
        assert_eq!(logged.completed().len(), 3);
        assert!(folded.completed().is_empty(), "log suppressed");
        let total: f64 = logged.completed().iter().map(CompletedJob::turnaround_s).sum();
        let max = logged.completed().iter().map(CompletedJob::turnaround_s).fold(0.0, f64::max);
        assert_eq!(folded.completed_count(), 3);
        assert_eq!(folded.turnaround_total_s(), total, "bit-identical sum");
        assert_eq!(folded.turnaround_max_s(), max, "bit-identical max");
        // The logging queue folds too.
        assert_eq!(logged.completed_count(), 3);
        assert_eq!(logged.turnaround_total_s(), total);
    }

    #[test]
    fn turnaround_accounts_arrival() {
        let mut mq = MultiQueue::new(1);
        mq.enqueue(CoreId(0), Job::new(0, 1.0, 0.05, 0.5, Benchmark::Gcc));
        mq.execute(CoreId(0), 0.1, 1.0, 1.2);
        let done = mq.completed()[0];
        assert!((done.turnaround_s() - 0.25).abs() < 1e-9);
    }
}
