//! The baseline: dynamic load balancing with thread affinity, the default
//! policy of modern OSes (Solaris on the Niagara-1 in the paper's
//! Section V).

use std::collections::HashMap;

use therm3d_floorplan::CoreId;
use therm3d_workload::Job;

use crate::policy::{ControlDecision, Observation, Policy, QueueHint};

/// Default queue-imbalance tolerance before affinity is overridden,
/// seconds of queued work.
pub const DEFAULT_IMBALANCE_S: f64 = 0.5;

/// The Solaris-style dispatcher: an arriving thread goes back to the core
/// it last ran on (cache locality); threads not seen recently go to the
/// least-loaded queue; and when honouring affinity would create a
/// significant queue imbalance, the thread is re-balanced instead.
///
/// All of the paper's non-adaptive policies (CGate, the DVFS family,
/// Migration) keep this placement and only add thermal control on top.
///
/// # Examples
///
/// ```
/// use therm3d_policies::baseline::AffinityPlacer;
/// use therm3d_policies::QueueHint;
/// use therm3d_workload::{Benchmark, Job};
///
/// let mut placer = AffinityPlacer::new();
/// let hint = QueueHint { queued_work_s: &[0.0, 0.2], queue_len: &[0, 1] };
/// let job = Job::new(0, 0.0, 0.3, 0.5, Benchmark::WebMed).with_thread(42);
/// let first = placer.place(&job, &hint);
/// // The same thread returns to the same core while queues stay balanced.
/// assert_eq!(placer.place(&job, &hint), first);
/// ```
#[derive(Debug, Clone)]
pub struct AffinityPlacer {
    last_core: HashMap<u64, CoreId>,
    imbalance_s: f64,
}

impl AffinityPlacer {
    /// Creates a placer with the default imbalance tolerance.
    #[must_use]
    pub fn new() -> Self {
        Self::with_imbalance(DEFAULT_IMBALANCE_S)
    }

    /// Creates a placer with a custom imbalance tolerance (seconds of
    /// queued work above the least-loaded queue).
    ///
    /// # Panics
    ///
    /// Panics if `imbalance_s` is negative.
    #[must_use]
    pub fn with_imbalance(imbalance_s: f64) -> Self {
        assert!(imbalance_s >= 0.0, "imbalance tolerance must be non-negative");
        Self { last_core: HashMap::new(), imbalance_s }
    }

    /// Chooses a core for `job` and records the thread→core binding.
    #[must_use]
    pub fn place(&mut self, job: &Job, hint: &QueueHint<'_>) -> CoreId {
        let least = hint.least_loaded();
        let target = match self.last_core.get(&job.thread_id) {
            Some(&home) if home.0 < hint.queued_work_s.len() => {
                let home_work = hint.queued_work_s[home.0];
                let min_work = hint.queued_work_s[least.0];
                if home_work <= min_work + self.imbalance_s {
                    home
                } else {
                    least
                }
            }
            _ => least,
        };
        self.last_core.insert(job.thread_id, target);
        target
    }

    /// Number of distinct threads tracked.
    #[must_use]
    pub fn tracked_threads(&self) -> usize {
        self.last_core.len()
    }
}

impl Default for AffinityPlacer {
    fn default() -> Self {
        Self::new()
    }
}

/// Dynamic Load Balancing (`Default` in the paper's figures): affinity
/// placement, no thermal actuation of any kind. Every other policy is
/// measured against this one.
///
/// # Examples
///
/// ```
/// use therm3d_policies::{DefaultPolicy, Policy};
///
/// let p = DefaultPolicy::new();
/// assert_eq!(p.name(), "Default");
/// ```
#[derive(Debug, Clone, Default)]
pub struct DefaultPolicy {
    placer: AffinityPlacer,
}

impl DefaultPolicy {
    /// Creates the baseline policy.
    #[must_use]
    pub fn new() -> Self {
        Self { placer: AffinityPlacer::new() }
    }
}

impl Policy for DefaultPolicy {
    fn name(&self) -> &str {
        "Default"
    }

    fn place_job(
        &mut self,
        job: &Job,
        _obs: &Observation<'_>,
        queue_hint: &QueueHint<'_>,
    ) -> CoreId {
        self.placer.place(job, queue_hint)
    }

    fn control(&mut self, obs: &Observation<'_>) -> ControlDecision {
        ControlDecision::run_all(obs.n_cores())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use therm3d_workload::Benchmark;

    fn obs<'a>(temps: &'a [f64], idle: &'a [f64]) -> Observation<'a> {
        Observation {
            now_s: 0.0,
            tick_s: 0.1,
            core_temps_c: temps,
            utilization: &[0.0; 4][..temps.len()],
            queue_len: &[0; 4][..temps.len()],
            queued_work_s: &[0.0; 4][..temps.len()],
            idle_time_s: idle,
        }
    }

    fn job(thread: u64) -> Job {
        Job::new(thread, 0.0, 0.3, 0.5, Benchmark::WebMed).with_thread(thread)
    }

    #[test]
    fn new_threads_go_to_least_loaded() {
        let mut p = AffinityPlacer::new();
        let hint = QueueHint { queued_work_s: &[0.9, 0.1], queue_len: &[3, 1] };
        assert_eq!(p.place(&job(1), &hint), CoreId(1));
    }

    #[test]
    fn recurring_threads_keep_their_core() {
        let mut p = AffinityPlacer::new();
        let hint0 = QueueHint { queued_work_s: &[0.0, 0.4], queue_len: &[0, 2] };
        assert_eq!(p.place(&job(7), &hint0), CoreId(0));
        // Core 0 now somewhat busier, but within the tolerance: affinity
        // wins.
        let hint1 = QueueHint { queued_work_s: &[0.3, 0.0], queue_len: &[1, 0] };
        assert_eq!(p.place(&job(7), &hint1), CoreId(0));
        assert_eq!(p.tracked_threads(), 1);
    }

    #[test]
    fn large_imbalance_overrides_affinity() {
        let mut p = AffinityPlacer::new();
        let hint0 = QueueHint { queued_work_s: &[0.0, 0.0], queue_len: &[0, 0] };
        assert_eq!(p.place(&job(7), &hint0), CoreId(0));
        let hint1 = QueueHint { queued_work_s: &[2.0, 0.0], queue_len: &[6, 0] };
        assert_eq!(p.place(&job(7), &hint1), CoreId(1), "rebalanced");
        // The binding is updated: the thread now lives on core 1.
        let hint2 = QueueHint { queued_work_s: &[0.0, 0.2], queue_len: &[0, 1] };
        assert_eq!(p.place(&job(7), &hint2), CoreId(1));
    }

    #[test]
    fn affinity_creates_load_concentration() {
        // The effect the DTM policies fight: a hot thread keeps hitting
        // the same core as long as queues stay tolerably balanced.
        let mut p = AffinityPlacer::new();
        let hint = QueueHint { queued_work_s: &[0.2, 0.0], queue_len: &[1, 0] };
        let first = p.place(&job(3), &QueueHint { queued_work_s: &[0.0, 0.0], queue_len: &[0, 0] });
        for _ in 0..5 {
            assert_eq!(p.place(&job(3), &hint), first);
        }
    }

    #[test]
    fn control_never_throttles() {
        let mut p = DefaultPolicy::new();
        let temps = [120.0, 120.0, 120.0, 120.0];
        let idle = [0.0; 4];
        let d = p.control(&obs(&temps, &idle));
        assert_eq!(d.commands.len(), 4);
        for c in d.commands {
            assert_eq!(c.vf_index, 0);
            assert!(!c.gated && !c.asleep);
        }
        assert!(d.migrations.is_empty());
    }

    #[test]
    #[should_panic(expected = "imbalance tolerance")]
    fn negative_tolerance_rejected() {
        let _ = AffinityPlacer::with_imbalance(-1.0);
    }
}
