//! Vertical (inter-layer) temperature gradients.
//!
//! Section V-C of the paper: "we investigated vertical gradients as
//! well, considering that the temperature difference of blocks on top of
//! each other may affect the performance and reliability of the TSVs.
//! However, we observed that the vertical gradients between adjacent
//! layers are limited to a few degrees only, due to the fact that the
//! interlayer material is thin and has sufficient conductivity." This
//! module provides the measurement that backs the claim.

/// Largest absolute temperature difference across any vertically
/// adjacent block pair.
///
/// `pairs` lists index pairs into `temps_c` for blocks that overlap in
/// plan view on adjacent layers (see
/// `therm3d_floorplan::Stack3d::vertical_adjacency`).
///
/// Returns 0 when `pairs` is empty.
///
/// # Examples
///
/// ```
/// use therm3d_metrics::max_vertical_gradient;
///
/// let temps = [80.0, 76.5, 90.0];
/// let pairs = [(0usize, 1usize), (1, 2)];
/// assert!((max_vertical_gradient(&temps, &pairs) - 13.5).abs() < 1e-12);
/// ```
#[must_use]
pub fn max_vertical_gradient(temps_c: &[f64], pairs: &[(usize, usize)]) -> f64 {
    pairs.iter().map(|&(a, b)| (temps_c[a] - temps_c[b]).abs()).fold(0.0, f64::max)
}

/// Streaming statistics of the vertical gradient across a run: peak,
/// mean, and the fraction of intervals above a TSV-stress threshold.
#[derive(Debug, Clone)]
pub struct VerticalGradientTracker {
    threshold_c: f64,
    samples: u64,
    exceed: u64,
    sum: f64,
    peak: f64,
}

impl VerticalGradientTracker {
    /// A tracker counting intervals whose worst vertical gradient
    /// exceeds `threshold_c`.
    ///
    /// # Panics
    ///
    /// Panics if `threshold_c` is not positive.
    #[must_use]
    pub fn new(threshold_c: f64) -> Self {
        assert!(threshold_c > 0.0, "threshold must be positive");
        Self { threshold_c, samples: 0, exceed: 0, sum: 0.0, peak: 0.0 }
    }

    /// The configured threshold, °C.
    #[must_use]
    pub fn threshold_c(&self) -> f64 {
        self.threshold_c
    }

    /// Records one interval's worst vertical gradient.
    pub fn record(&mut self, gradient_c: f64) {
        self.samples += 1;
        self.sum += gradient_c;
        self.peak = self.peak.max(gradient_c);
        if gradient_c > self.threshold_c {
            self.exceed += 1;
        }
    }

    /// Fraction of intervals above the threshold (0 when empty).
    #[must_use]
    pub fn fraction(&self) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            self.exceed as f64 / self.samples as f64
        }
    }

    /// [`fraction`](Self::fraction) as a percentage.
    #[must_use]
    pub fn percent(&self) -> f64 {
        100.0 * self.fraction()
    }

    /// Mean vertical gradient, °C (0 when empty).
    #[must_use]
    pub fn mean_c(&self) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            self.sum / self.samples as f64
        }
    }

    /// Largest vertical gradient seen, °C.
    #[must_use]
    pub fn peak_c(&self) -> f64 {
        self.peak
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_pairs_give_zero() {
        assert_eq!(max_vertical_gradient(&[50.0, 60.0], &[]), 0.0);
    }

    #[test]
    fn gradient_is_symmetric_in_pair_order() {
        let temps = [70.0, 90.0];
        assert_eq!(
            max_vertical_gradient(&temps, &[(0, 1)]),
            max_vertical_gradient(&temps, &[(1, 0)])
        );
    }

    #[test]
    fn tracker_statistics() {
        let mut t = VerticalGradientTracker::new(5.0);
        t.record(2.0);
        t.record(8.0);
        t.record(4.0);
        assert!((t.fraction() - 1.0 / 3.0).abs() < 1e-12);
        assert!((t.mean_c() - 14.0 / 3.0).abs() < 1e-12);
        assert_eq!(t.peak_c(), 8.0);
        assert!((t.percent() - 100.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn empty_tracker_is_zero() {
        let t = VerticalGradientTracker::new(5.0);
        assert_eq!(t.fraction(), 0.0);
        assert_eq!(t.mean_c(), 0.0);
        assert_eq!(t.peak_c(), 0.0);
    }

    #[test]
    #[should_panic(expected = "threshold must be positive")]
    fn zero_threshold_rejected() {
        let _ = VerticalGradientTracker::new(0.0);
    }
}
