//! Spatial temperature gradients (Section V-C, Figure 5): the percentage
//! of time the maximum per-layer gradient exceeds 15 °C, the point where
//! clock skew and circuit-delay impact set in (Ajami et al.).

/// Maximum within-layer spread: for each layer, hottest − coolest unit;
/// return the maximum over layers.
///
/// `layer_of_block[i]` gives the layer index of `temps_c[i]`. This is the
/// paper's spatial-distribution quantity: per-layer gradients only,
/// ignoring inter-layer (vertical) differences, which Section V-C reports
/// as limited to a few degrees.
///
/// # Panics
///
/// Panics if the slices' lengths differ.
///
/// # Examples
///
/// ```
/// use therm3d_metrics::max_layer_gradient;
///
/// // Two layers: [60, 80] and [70, 75] → gradients 20 and 5 → max 20.
/// let g = max_layer_gradient(&[60.0, 80.0, 70.0, 75.0], &[0, 0, 1, 1]);
/// assert!((g - 20.0).abs() < 1e-12);
/// ```
#[must_use]
pub fn max_layer_gradient(temps_c: &[f64], layer_of_block: &[usize]) -> f64 {
    assert_eq!(temps_c.len(), layer_of_block.len(), "one layer id per temperature");
    let n_layers = layer_of_block.iter().copied().max().map_or(0, |m| m + 1);
    let mut min = vec![f64::INFINITY; n_layers];
    let mut max = vec![f64::NEG_INFINITY; n_layers];
    for (&t, &l) in temps_c.iter().zip(layer_of_block) {
        if t < min[l] {
            min[l] = t;
        }
        if t > max[l] {
            max[l] = t;
        }
    }
    min.iter()
        .zip(&max)
        .filter(|(lo, _)| lo.is_finite())
        .map(|(lo, hi)| hi - lo)
        .fold(0.0, f64::max)
}

/// Streaming tracker for large spatial gradients.
///
/// # Examples
///
/// ```
/// use therm3d_metrics::SpatialGradientTracker;
///
/// let mut sg = SpatialGradientTracker::new(15.0);
/// sg.record(20.0);
/// sg.record(10.0);
/// assert!((sg.percent() - 50.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SpatialGradientTracker {
    threshold_c: f64,
    exceed: u64,
    total: u64,
    peak: f64,
    sum: f64,
}

impl SpatialGradientTracker {
    /// Creates a tracker with the given gradient threshold (paper: 15 °C).
    #[must_use]
    pub fn new(threshold_c: f64) -> Self {
        Self { threshold_c, exceed: 0, total: 0, peak: 0.0, sum: 0.0 }
    }

    /// The threshold in °C.
    #[must_use]
    pub fn threshold_c(&self) -> f64 {
        self.threshold_c
    }

    /// Records one interval's maximum per-layer gradient.
    pub fn record(&mut self, gradient_c: f64) {
        self.total += 1;
        self.sum += gradient_c;
        if gradient_c > self.threshold_c {
            self.exceed += 1;
        }
        if gradient_c > self.peak {
            self.peak = gradient_c;
        }
    }

    /// Fraction of intervals with a gradient above the threshold.
    #[must_use]
    pub fn fraction(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.exceed as f64 / self.total as f64
        }
    }

    /// [`fraction`](Self::fraction) as a percentage — Figure 5's y-axis.
    #[must_use]
    pub fn percent(&self) -> f64 {
        self.fraction() * 100.0
    }

    /// Mean gradient over all intervals, °C.
    #[must_use]
    pub fn mean_c(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum / self.total as f64
        }
    }

    /// Largest gradient observed, °C.
    #[must_use]
    pub fn peak_c(&self) -> f64 {
        self.peak
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gradient_over_single_layer() {
        let g = max_layer_gradient(&[50.0, 72.0, 61.0], &[0, 0, 0]);
        assert!((g - 22.0).abs() < 1e-12);
    }

    #[test]
    fn picks_worst_layer() {
        let temps = [50.0, 55.0, 40.0, 80.0];
        let layers = [0, 0, 1, 1];
        assert!((max_layer_gradient(&temps, &layers) - 40.0).abs() < 1e-12);
    }

    #[test]
    fn empty_input_is_zero() {
        assert_eq!(max_layer_gradient(&[], &[]), 0.0);
    }

    #[test]
    fn vertical_differences_ignored() {
        // Layer 0 uniformly 50, layer 1 uniformly 90: huge vertical
        // difference, zero per-layer gradient.
        let temps = [50.0, 50.0, 90.0, 90.0];
        let layers = [0, 0, 1, 1];
        assert_eq!(max_layer_gradient(&temps, &layers), 0.0);
    }

    #[test]
    fn tracker_statistics() {
        let mut sg = SpatialGradientTracker::new(15.0);
        for g in [5.0, 16.0, 25.0, 10.0] {
            sg.record(g);
        }
        assert!((sg.fraction() - 0.5).abs() < 1e-12);
        assert!((sg.mean_c() - 14.0).abs() < 1e-12);
        assert!((sg.peak_c() - 25.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "one layer id per temperature")]
    fn mismatched_lengths_rejected() {
        let _ = max_layer_gradient(&[1.0, 2.0], &[0]);
    }
}
