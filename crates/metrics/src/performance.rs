//! Performance accounting (Section V-A): average delay in job completion
//! times relative to the baseline policy, plus energy integration.

/// Summary statistics over job turnaround times.
///
/// # Examples
///
/// ```
/// use therm3d_metrics::PerformanceStats;
///
/// let stats = PerformanceStats::from_turnarounds(&[1.0, 2.0, 3.0]);
/// assert_eq!(stats.completed, 3);
/// assert!((stats.mean_turnaround_s - 2.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PerformanceStats {
    /// Number of completed jobs.
    pub completed: usize,
    /// Mean turnaround (completion − arrival), seconds.
    pub mean_turnaround_s: f64,
    /// Maximum turnaround, seconds.
    pub max_turnaround_s: f64,
    /// Total CPU demand completed, seconds (throughput numerator).
    pub total_turnaround_s: f64,
}

impl PerformanceStats {
    /// Builds statistics from turnaround times.
    #[must_use]
    pub fn from_turnarounds(turnarounds_s: &[f64]) -> Self {
        let completed = turnarounds_s.len();
        let total: f64 = turnarounds_s.iter().sum();
        let max = turnarounds_s.iter().copied().fold(0.0, f64::max);
        Self {
            completed,
            mean_turnaround_s: if completed == 0 { 0.0 } else { total / completed as f64 },
            max_turnaround_s: max,
            total_turnaround_s: total,
        }
    }

    /// Builds statistics from an online fold over turnaround times, for
    /// consumers that never hold the per-job list: accumulate
    /// `total += t`, `max = max.max(t)` (seeded at 0.0) and a count in
    /// completion order, and the result is bit-identical to
    /// [`from_turnarounds`](Self::from_turnarounds) over the same
    /// sequence (`iter().sum()` and `fold(0.0, f64::max)` associate
    /// left-to-right exactly like the running fold).
    #[must_use]
    pub fn from_accumulated(completed: usize, total_s: f64, max_s: f64) -> Self {
        Self {
            completed,
            mean_turnaround_s: if completed == 0 { 0.0 } else { total_s / completed as f64 },
            max_turnaround_s: max_s,
            total_turnaround_s: total_s,
        }
    }

    /// Performance normalized to a baseline: `baseline_mean / self_mean`
    /// (1.0 = as fast as the baseline, smaller = slower), the quantity on
    /// Figure 3's right axis.
    ///
    /// Returns 1.0 when either mean is degenerate (no completions).
    #[must_use]
    pub fn normalized_vs(&self, baseline: &PerformanceStats) -> f64 {
        if self.mean_turnaround_s <= 0.0 || baseline.mean_turnaround_s <= 0.0 {
            1.0
        } else {
            baseline.mean_turnaround_s / self.mean_turnaround_s
        }
    }

    /// Average delay relative to a baseline as a percentage
    /// (`(self − baseline) / baseline`), Section V-A's metric.
    #[must_use]
    pub fn delay_percent_vs(&self, baseline: &PerformanceStats) -> f64 {
        if baseline.mean_turnaround_s <= 0.0 {
            0.0
        } else {
            (self.mean_turnaround_s - baseline.mean_turnaround_s) / baseline.mean_turnaround_s
                * 100.0
        }
    }
}

/// Streaming energy integrator: `E = Σ P·Δt`.
///
/// # Examples
///
/// ```
/// use therm3d_metrics::EnergyMeter;
///
/// let mut e = EnergyMeter::new();
/// e.add(50.0, 0.1); // 50 W for 100 ms
/// e.add(30.0, 0.1);
/// assert!((e.joules() - 8.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EnergyMeter {
    joules: f64,
    seconds: f64,
}

impl EnergyMeter {
    /// Creates an empty meter.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Accumulates `power_w` applied for `dt_s` seconds.
    ///
    /// # Panics
    ///
    /// Panics if `power_w` is negative or `dt_s` is not positive.
    pub fn add(&mut self, power_w: f64, dt_s: f64) {
        assert!(power_w >= 0.0, "power must be non-negative");
        assert!(dt_s > 0.0, "dt must be positive");
        self.joules += power_w * dt_s;
        self.seconds += dt_s;
    }

    /// Total energy in joules.
    #[must_use]
    pub fn joules(&self) -> f64 {
        self.joules
    }

    /// Total integration time in seconds.
    #[must_use]
    pub fn seconds(&self) -> f64 {
        self.seconds
    }

    /// Mean power over the integration, W.
    #[must_use]
    pub fn mean_power_w(&self) -> f64 {
        if self.seconds == 0.0 {
            0.0
        } else {
            self.joules / self.seconds
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_turnarounds() {
        let s = PerformanceStats::from_turnarounds(&[]);
        assert_eq!(s.completed, 0);
        assert_eq!(s.mean_turnaround_s, 0.0);
        assert_eq!(s.normalized_vs(&s), 1.0);
    }

    #[test]
    fn normalization_direction() {
        let base = PerformanceStats::from_turnarounds(&[1.0, 1.0]);
        let slower = PerformanceStats::from_turnarounds(&[2.0, 2.0]);
        assert!((slower.normalized_vs(&base) - 0.5).abs() < 1e-12);
        assert!((slower.delay_percent_vs(&base) - 100.0).abs() < 1e-12);
        assert!((base.normalized_vs(&base) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn accumulated_fold_is_bit_identical_to_slice_form() {
        let turnarounds = [0.5, 2.5, 1.0, 0.125, 7.25e-3];
        let mut count = 0usize;
        let mut total = 0.0f64;
        let mut max = 0.0f64;
        for &t in &turnarounds {
            count += 1;
            total += t;
            max = max.max(t);
        }
        assert_eq!(
            PerformanceStats::from_accumulated(count, total, max),
            PerformanceStats::from_turnarounds(&turnarounds)
        );
        assert_eq!(
            PerformanceStats::from_accumulated(0, 0.0, 0.0),
            PerformanceStats::from_turnarounds(&[])
        );
    }

    #[test]
    fn max_and_total() {
        let s = PerformanceStats::from_turnarounds(&[0.5, 2.5, 1.0]);
        assert!((s.max_turnaround_s - 2.5).abs() < 1e-12);
        assert!((s.total_turnaround_s - 4.0).abs() < 1e-12);
    }

    #[test]
    fn energy_meter_mean_power() {
        let mut e = EnergyMeter::new();
        e.add(10.0, 1.0);
        e.add(20.0, 1.0);
        assert!((e.mean_power_w() - 15.0).abs() < 1e-12);
        assert!((e.seconds() - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "power must be non-negative")]
    fn negative_power_rejected() {
        EnergyMeter::new().add(-1.0, 0.1);
    }
}
