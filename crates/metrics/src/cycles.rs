//! Temporal thermal cycles (Section V-D, Figure 6): the frequency of
//! temperature fluctuations larger than 20 °C, computed over a sliding
//! window and averaged over all cores.
//!
//! JEDEC's failure models make cycle magnitude devastating: at equal cycle
//! frequency, raising ΔT from 10 to 20 °C multiplies the failure rate of
//! metallic structures by ~16×, which is why the paper tracks the
//! frequency of ΔT > 20 °C events specifically.

use std::collections::VecDeque;

/// Streaming per-core sliding-window ΔT tracker.
///
/// Every [`record`](Self::record) pushes one temperature sample per core;
/// once a core's window is full, the window's `max − min` is its current
/// ΔT. The reported metric is the fraction of (core, interval) samples
/// whose ΔT exceeds the threshold — Figure 6's "Thermal Cycles
/// (% > 20 C)".
///
/// # Examples
///
/// ```
/// use therm3d_metrics::ThermalCycleTracker;
///
/// let mut tc = ThermalCycleTracker::new(20.0, 3, 2);
/// tc.record(&[50.0, 50.0]);
/// tc.record(&[75.0, 52.0]);
/// tc.record(&[50.0, 51.0]); // core 0 swings 25 °C within the window
/// assert!(tc.percent() > 0.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ThermalCycleTracker {
    threshold_c: f64,
    window: usize,
    histories: Vec<VecDeque<f64>>,
    exceed: u64,
    total: u64,
    peak_delta: f64,
    sum_delta: f64,
}

impl ThermalCycleTracker {
    /// Creates a tracker for `n_cores` cores with the given ΔT threshold
    /// (paper: 20 °C) and sliding window length in samples.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero or `n_cores` is zero.
    #[must_use]
    pub fn new(threshold_c: f64, window: usize, n_cores: usize) -> Self {
        assert!(window > 0, "window must be non-empty");
        assert!(n_cores > 0, "need at least one core");
        Self {
            threshold_c,
            window,
            histories: vec![VecDeque::with_capacity(window); n_cores],
            exceed: 0,
            total: 0,
            peak_delta: 0.0,
            sum_delta: 0.0,
        }
    }

    /// The ΔT threshold in °C.
    #[must_use]
    pub fn threshold_c(&self) -> f64 {
        self.threshold_c
    }

    /// The window length in samples.
    #[must_use]
    pub fn window(&self) -> usize {
        self.window
    }

    /// Records one interval's per-core temperatures.
    ///
    /// # Panics
    ///
    /// Panics if `core_temps_c.len()` differs from the construction core
    /// count.
    pub fn record(&mut self, core_temps_c: &[f64]) {
        assert_eq!(core_temps_c.len(), self.histories.len(), "core count changed mid-run");
        for (h, &t) in self.histories.iter_mut().zip(core_temps_c) {
            if h.len() == self.window {
                h.pop_front();
            }
            h.push_back(t);
            if h.len() == self.window {
                let lo = h.iter().copied().fold(f64::INFINITY, f64::min);
                let hi = h.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                let delta = hi - lo;
                self.total += 1;
                self.sum_delta += delta;
                if delta > self.threshold_c {
                    self.exceed += 1;
                }
                if delta > self.peak_delta {
                    self.peak_delta = delta;
                }
            }
        }
    }

    /// Fraction of (core, interval) samples whose window ΔT exceeds the
    /// threshold.
    #[must_use]
    pub fn fraction(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.exceed as f64 / self.total as f64
        }
    }

    /// [`fraction`](Self::fraction) as a percentage — Figure 6's y-axis.
    #[must_use]
    pub fn percent(&self) -> f64 {
        self.fraction() * 100.0
    }

    /// Mean window ΔT over all samples, °C.
    #[must_use]
    pub fn mean_delta_c(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum_delta / self.total as f64
        }
    }

    /// Largest window ΔT observed, °C.
    #[must_use]
    pub fn peak_delta_c(&self) -> f64 {
        self.peak_delta
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_temperature_never_cycles() {
        let mut tc = ThermalCycleTracker::new(20.0, 5, 2);
        for _ in 0..50 {
            tc.record(&[70.0, 80.0]);
        }
        assert_eq!(tc.fraction(), 0.0);
        assert_eq!(tc.mean_delta_c(), 0.0);
    }

    #[test]
    fn detects_large_swings() {
        let mut tc = ThermalCycleTracker::new(20.0, 4, 1);
        // Square wave 50↔75: ΔT = 25 within any 4-sample window.
        for i in 0..40 {
            tc.record(&[if i % 4 < 2 { 50.0 } else { 75.0 }]);
        }
        assert!(tc.fraction() > 0.9, "fraction {}", tc.fraction());
        assert!((tc.peak_delta_c() - 25.0).abs() < 1e-12);
    }

    #[test]
    fn small_swings_below_threshold_ignored() {
        let mut tc = ThermalCycleTracker::new(20.0, 4, 1);
        for i in 0..40 {
            tc.record(&[if i % 4 < 2 { 60.0 } else { 70.0 }]);
        }
        assert_eq!(tc.fraction(), 0.0);
        assert!((tc.peak_delta_c() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn warmup_samples_not_counted() {
        let mut tc = ThermalCycleTracker::new(20.0, 10, 1);
        for _ in 0..9 {
            tc.record(&[50.0]);
        }
        assert_eq!(tc.fraction(), 0.0);
        assert_eq!(tc.mean_delta_c(), 0.0, "window not yet full");
    }

    #[test]
    fn per_core_independence() {
        let mut tc = ThermalCycleTracker::new(20.0, 2, 2);
        // Core 0 swings wildly, core 1 steady.
        for i in 0..20 {
            tc.record(&[if i % 2 == 0 { 50.0 } else { 80.0 }, 70.0]);
        }
        // Half the (core, interval) samples exceed.
        assert!((tc.fraction() - 0.5).abs() < 0.1, "fraction {}", tc.fraction());
    }

    #[test]
    #[should_panic(expected = "window must be non-empty")]
    fn zero_window_rejected() {
        let _ = ThermalCycleTracker::new(20.0, 0, 1);
    }
}
