//! Thermal hot-spot frequency: the percentage of time cores spend above
//! the critical threshold (85 °C in the paper; Figures 3 and 4).

/// Streaming tracker for hot-spot occurrence.
///
/// Each sample is one thermal-sensor reading interval; the metric is the
/// fraction of core-time (core-samples) spent above the threshold,
/// exactly the "% time above 85 °C" quantity of Figures 3–4.
///
/// # Examples
///
/// ```
/// use therm3d_metrics::HotSpotTracker;
///
/// let mut hs = HotSpotTracker::new(85.0);
/// hs.record(&[80.0, 90.0]); // one of two cores hot
/// hs.record(&[80.0, 80.0]); // none hot
/// assert!((hs.fraction() - 0.25).abs() < 1e-12);
/// assert!((hs.percent() - 25.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct HotSpotTracker {
    threshold_c: f64,
    hot_core_samples: u64,
    total_core_samples: u64,
    any_hot_samples: u64,
    total_samples: u64,
    peak_c: f64,
}

impl HotSpotTracker {
    /// Creates a tracker with the given threshold in °C.
    #[must_use]
    pub fn new(threshold_c: f64) -> Self {
        Self {
            threshold_c,
            hot_core_samples: 0,
            total_core_samples: 0,
            any_hot_samples: 0,
            total_samples: 0,
            peak_c: f64::NEG_INFINITY,
        }
    }

    /// The threshold in °C.
    #[must_use]
    pub fn threshold_c(&self) -> f64 {
        self.threshold_c
    }

    /// Records one interval's per-core temperatures.
    pub fn record(&mut self, core_temps_c: &[f64]) {
        let mut any = false;
        for &t in core_temps_c {
            self.total_core_samples += 1;
            if t > self.threshold_c {
                self.hot_core_samples += 1;
                any = true;
            }
            if t > self.peak_c {
                self.peak_c = t;
            }
        }
        self.total_samples += 1;
        if any {
            self.any_hot_samples += 1;
        }
    }

    /// Fraction of core-samples above the threshold, `[0, 1]` (0 before
    /// any sample).
    #[must_use]
    pub fn fraction(&self) -> f64 {
        if self.total_core_samples == 0 {
            0.0
        } else {
            self.hot_core_samples as f64 / self.total_core_samples as f64
        }
    }

    /// [`fraction`](Self::fraction) as a percentage — the figures' y-axis.
    #[must_use]
    pub fn percent(&self) -> f64 {
        self.fraction() * 100.0
    }

    /// Fraction of intervals in which *any* core was above the threshold.
    #[must_use]
    pub fn any_hot_fraction(&self) -> f64 {
        if self.total_samples == 0 {
            0.0
        } else {
            self.any_hot_samples as f64 / self.total_samples as f64
        }
    }

    /// Hottest temperature observed, °C (NaN before any sample).
    #[must_use]
    pub fn peak_c(&self) -> f64 {
        if self.total_samples == 0 {
            f64::NAN
        } else {
            self.peak_c
        }
    }

    /// Number of intervals recorded.
    #[must_use]
    pub fn samples(&self) -> u64 {
        self.total_samples
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_tracker_reports_zero() {
        let hs = HotSpotTracker::new(85.0);
        assert_eq!(hs.fraction(), 0.0);
        assert_eq!(hs.any_hot_fraction(), 0.0);
        assert!(hs.peak_c().is_nan());
    }

    #[test]
    fn counts_core_time_not_chip_time() {
        let mut hs = HotSpotTracker::new(85.0);
        hs.record(&[90.0, 90.0, 80.0, 80.0]);
        assert!((hs.fraction() - 0.5).abs() < 1e-12);
        assert!((hs.any_hot_fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn threshold_is_exclusive() {
        let mut hs = HotSpotTracker::new(85.0);
        hs.record(&[85.0]);
        assert_eq!(hs.fraction(), 0.0, "exactly at threshold is not a hot spot");
        hs.record(&[85.000001]);
        assert!(hs.fraction() > 0.0);
    }

    #[test]
    fn tracks_peak() {
        let mut hs = HotSpotTracker::new(85.0);
        hs.record(&[70.0, 93.5]);
        hs.record(&[80.0, 60.0]);
        assert!((hs.peak_c() - 93.5).abs() < 1e-12);
        assert_eq!(hs.samples(), 2);
    }
}
