//! Thermal reliability and performance metrics for the `therm3d`
//! reproduction of "Dynamic Thermal Management in 3D Multicore
//! Architectures" (Coskun et al., DATE 2009).
//!
//! One streaming tracker per evaluation quantity:
//!
//! - [`HotSpotTracker`] — % of core-time above 85 °C (Figures 3–4),
//! - [`SpatialGradientTracker`] + [`max_layer_gradient`] — % of time the
//!   worst per-layer gradient exceeds 15 °C (Figure 5),
//! - [`ThermalCycleTracker`] — % of sliding-window ΔT samples above 20 °C
//!   (Figure 6),
//! - [`PerformanceStats`] — job turnaround and delay vs the baseline
//!   (Section V-A), and [`EnergyMeter`] for DPM energy accounting,
//! - [`VerticalGradientTracker`] + [`max_vertical_gradient`] — the
//!   inter-layer (TSV-stress) gradients Section V-C investigates.
//!
//! The crate is dependency-free; the simulation engine feeds it plain
//! slices each sampling interval.

pub mod cycles;
pub mod gradients;
pub mod hotspots;
pub mod performance;
pub mod vertical;

pub use cycles::ThermalCycleTracker;
pub use gradients::{max_layer_gradient, SpatialGradientTracker};
pub use hotspots::HotSpotTracker;
pub use performance::{EnergyMeter, PerformanceStats};
pub use vertical::{max_vertical_gradient, VerticalGradientTracker};
