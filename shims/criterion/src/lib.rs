//! Offline stand-in for the parts of `criterion 0.5` this workspace
//! uses: `criterion_group!`/`criterion_main!`, `Criterion`,
//! `benchmark_group`, `sample_size`, `bench_with_input`, `Bencher::iter`,
//! `Bencher::iter_batched`, `BatchSize` and `black_box`.
//!
//! Instead of Criterion's statistical machinery, each benchmark is
//! warmed up once and then timed over `sample_size` samples; the median
//! per-iteration time is printed as a single line. Good enough to rank
//! policies and spot order-of-magnitude regressions offline; use the
//! real crate for publishable numbers.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of the standard black box (the real crate's default too).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How per-iteration inputs are batched in [`Bencher::iter_batched`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: many per batch in the real crate; one here.
    SmallInput,
    /// Large inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// A benchmark identifier (subset of `criterion::BenchmarkId`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds an id from a parameter's `Display` form.
    pub fn from_parameter<D: Display>(parameter: D) -> Self {
        Self { id: parameter.to_string() }
    }

    /// Builds an id from a function name and a parameter.
    pub fn new<D: Display>(function: &str, parameter: D) -> Self {
        Self { id: format!("{function}/{parameter}") }
    }
}

/// The benchmark manager (subset of `criterion::Criterion`).
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _parent: self, name: name.to_owned(), sample_size: 30 }
    }
}

/// A group of related benchmarks (subset of `criterion::BenchmarkGroup`).
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one benchmark with an input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut samples = Vec::with_capacity(self.sample_size);
        // One warm-up sample, then the timed ones.
        for i in 0..=self.sample_size {
            let mut b = Bencher { elapsed: Duration::ZERO, iters: 0 };
            f(&mut b, input);
            if i > 0 && b.iters > 0 {
                samples.push(b.elapsed.as_nanos() as f64 / b.iters as f64);
            }
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        let median = samples.get(samples.len() / 2).copied().unwrap_or(f64::NAN);
        println!(
            "{}/{}: median {:.1} ns/iter ({} samples)",
            self.name,
            id.id,
            median,
            samples.len()
        );
        self
    }

    /// Runs one benchmark without an explicit input.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.bench_with_input(BenchmarkId::from_parameter(id), &(), |b, ()| f(b))
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Times closures (subset of `criterion::Bencher`).
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Times repeated calls of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        const ITERS: u64 = 10;
        let start = Instant::now();
        for _ in 0..ITERS {
            black_box(routine());
        }
        self.elapsed += start.elapsed();
        self.iters += ITERS;
    }

    /// Times `routine` over inputs built (untimed) by `setup`.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        const ITERS: u64 = 4;
        for _ in 0..ITERS {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.elapsed += start.elapsed();
        }
        self.iters += ITERS;
    }
}

/// Declares a benchmark group function (subset of `criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Declares the benchmark `main` (subset of `criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $($group(&mut c);)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench_example(c: &mut Criterion) {
        let mut group = c.benchmark_group("example");
        group.sample_size(3);
        for n in [10u64, 100] {
            group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
                b.iter(|| (0..n).sum::<u64>());
            });
        }
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::SmallInput);
        });
        group.finish();
    }

    criterion_group!(benches, bench_example);

    #[test]
    fn harness_runs() {
        let mut c = Criterion::default();
        benches(&mut c);
    }
}
