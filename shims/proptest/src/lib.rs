//! Offline stand-in for the parts of `proptest 1` this workspace uses:
//! the `proptest!` macro with an optional `#![proptest_config(..)]`
//! attribute, `prop_assert!`/`prop_assert_eq!`, the [`Strategy`] trait
//! with `prop_map`, numeric-range strategies, tuple strategies,
//! `prop::sample::select` and `prop::collection::vec`.
//!
//! Differences from the real crate: inputs are sampled from a
//! deterministic per-test generator (seeded from the test name) and
//! failures panic immediately — there is no shrinking and no failure
//! persistence. Because the generator is deterministic, rerunning the
//! test replays the identical case sequence, so any failure reproduces
//! exactly.

use std::ops::Range;

/// Runner configuration (subset of `proptest::test_runner::Config`).
///
/// Only `cases` is consulted; the remaining fields exist so call sites
/// using struct-update syntax (`..ProptestConfig::default()`) compile
/// against the same shape as the real crate.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required for the property to pass.
    pub cases: u32,
    /// Maximum global rejects (unused: the shim has no filters).
    pub max_global_rejects: u32,
    /// Maximum shrink iterations (unused: the shim does not shrink).
    pub max_shrink_iters: u32,
    /// Verbosity (unused).
    pub verbose: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256, max_global_rejects: 1024, max_shrink_iters: 0, verbose: 0 }
    }
}

/// Deterministic input generator handed to strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from an arbitrary seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self { state: seed ^ 0x5DEE_CE66_D1CE_B00B }
    }

    /// Next 64 random bits (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `usize` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + (self.next_u64() % (hi - lo) as u64) as usize
    }
}

/// FNV-1a hash of a string — stable seed derivation from test names.
#[must_use]
pub fn fnv1a(s: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// A generator of test inputs (subset of `proptest::strategy::Strategy`).
pub trait Strategy {
    /// The type of value generated.
    type Value;

    /// Samples one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f` (as `Strategy::prop_map`).
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy that always yields a clone of the same value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range {self:?}");
        let v = self.start + rng.next_f64() * (self.end - self.start);
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range {self:?}");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_int_strategy!(u8, u16, u32, u64, usize, i32, i64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Sampling strategies (subset of `proptest::sample`).
pub mod sample {
    use super::{Strategy, TestRng};

    /// Uniformly selects one of the given values.
    ///
    /// # Panics
    ///
    /// Panics (on generation) if `items` is empty.
    pub fn select<T: Clone + std::fmt::Debug>(items: Vec<T>) -> Select<T> {
        Select { items }
    }

    /// Strategy returned by [`select`].
    #[derive(Debug, Clone)]
    pub struct Select<T: Clone> {
        items: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            assert!(!self.items.is_empty(), "select from empty set");
            self.items[rng.usize_in(0, self.items.len())].clone()
        }
    }
}

/// Collection strategies (subset of `proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// A size specification: exact or a half-open range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            Self { lo: r.start, hi: r.end }
        }
    }

    /// Generates `Vec`s whose elements come from `element` and whose
    /// length is drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// Strategy returned by [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.usize_in(self.size.lo, self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The prelude, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{Just, ProptestConfig, Strategy};
}

/// Asserts a property holds (panics immediately; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts two expressions are equal (panics immediately; no shrinking).
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Asserts two expressions differ (panics immediately; no shrinking).
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Declares property tests (subset of `proptest::proptest!`).
///
/// Supports the form used throughout this workspace:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]
///     #[test]
///     fn my_property(x in 0u64..10, v in prop::collection::vec(0.0f64..1.0, 1..8)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:pat_param in $strat:expr),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let seed = $crate::fnv1a(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                let mut rng = $crate::TestRng::new(seed ^ (u64::from(case) << 32));
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)*
                $body
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, Copy, PartialEq)]
    enum Color {
        Red,
        Green,
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

        #[test]
        fn ranges_and_tuples(x in 1u64..100, (a, b) in (0.0f64..1.0, 0usize..4)) {
            prop_assert!((1..100).contains(&x));
            prop_assert!((0.0..1.0).contains(&a));
            prop_assert!(b < 4);
        }

        #[test]
        fn vec_and_select(
            v in prop::collection::vec(0.0f64..10.0, 2..9),
            c in prop::sample::select(vec![Color::Red, Color::Green]),
        ) {
            prop_assert!(v.len() >= 2 && v.len() < 9);
            prop_assert!(v.iter().all(|&x| (0.0..10.0).contains(&x)));
            prop_assert!(c == Color::Red || c == Color::Green);
        }

        #[test]
        fn mapped_strategy(p in (0.0f64..5.0, 0.0f64..5.0).prop_map(|(x, y)| x + y)) {
            prop_assert!((0.0..10.0).contains(&p), "{p}");
        }
    }

    #[test]
    fn runs_are_deterministic() {
        let mut a = crate::TestRng::new(1);
        let mut b = crate::TestRng::new(1);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
