//! Offline stand-in for the parts of `rand 0.8` this workspace uses:
//! `rngs::StdRng`, `SeedableRng::seed_from_u64`, `Rng::gen_range` over
//! `f64`/integer ranges, and `Rng::gen_bool`.
//!
//! `StdRng` here is xoshiro256++ seeded through SplitMix64 — a
//! high-quality, deterministic generator, but a *different stream* than
//! upstream's ChaCha12. Nothing in this workspace asserts exact draws;
//! traces only need to be reproducible per seed, which holds.

use std::ops::Range;

/// Seedable random generators (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a `u64` seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// The user-facing sampling interface (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability must be in [0,1]: {p}");
        next_f64(self) < p
    }
}

impl<T: RngCore> Rng for T {}

/// The raw generator interface (subset of `rand::RngCore`).
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Uniform `f64` in `[0, 1)` from 53 random bits.
fn next_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges that can be sampled from (subset of `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Samples one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range {self:?}");
        let u = next_f64(rng);
        let v = self.start + u * (self.end - self.start);
        // Guard the half-open contract against rounding at the top end.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range {self:?}");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

/// Generator implementations (subset of `rand::rngs`).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stands in for `rand`'s
    /// ChaCha12-based `StdRng`; different stream, same contract).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0.0f64..1.0), b.gen_range(0.0f64..1.0));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.gen_range(-0.05f64..0.05);
            assert!((-0.05..0.05).contains(&x));
            let n = rng.gen_range(3u64..17);
            assert!((3..17).contains(&n));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.3).abs() < 0.01, "{frac}");
    }

    #[test]
    fn distinct_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }
}
