//! Figure-shape regression tests: the qualitative relationships the
//! paper's evaluation reports must hold when the experiment harness runs
//! at reduced scale (shorter traces, 4×4 grid). EXPERIMENTS.md records
//! the full-scale numbers; these tests pin the *ordering* so refactors
//! cannot silently break the reproduction.

use therm3d::{RunResult, SimConfig, Simulator};
use therm3d_floorplan::Experiment;
use therm3d_policies::PolicyKind;
use therm3d_workload::{generate_mix, Benchmark};

const SECS: f64 = 60.0;

fn cell(exp: Experiment, kind: PolicyKind, dpm: bool) -> RunResult {
    let stack = exp.stack();
    let policy = kind.build_with_dpm(&stack, 0xACE1, dpm);
    let trace = generate_mix(&Benchmark::ALL, exp.num_cores(), SECS, 2009);
    Simulator::new(SimConfig::fast(exp), policy).run(&trace, SECS)
}

#[test]
fn fig3_hot_spots_grow_with_layer_count() {
    // The paper's central architectural observation: stacking more active
    // layers raises thermal stress. Peak temperatures must order
    // 2-layer < 4-layer for the baseline policy.
    let p1 = cell(Experiment::Exp1, PolicyKind::Default, false);
    let p3 = cell(Experiment::Exp3, PolicyKind::Default, false);
    assert!(
        p3.peak_temp_c > p1.peak_temp_c + 10.0,
        "EXP-3 must run much hotter than EXP-1: {:.1} vs {:.1}",
        p3.peak_temp_c,
        p1.peak_temp_c
    );
    assert!(p3.hotspot_pct > p1.hotspot_pct, "and spend more time above 85 °C");

    let p2 = cell(Experiment::Exp2, PolicyKind::Default, false);
    let p4 = cell(Experiment::Exp4, PolicyKind::Default, false);
    assert!(p4.peak_temp_c > p2.peak_temp_c + 10.0);
    assert!(p4.hotspot_pct >= p2.hotspot_pct);
}

#[test]
fn fig3_hybrids_are_the_most_successful_policies() {
    // "The most successful policies are the hybrid policies" (Section
    // V-B) — on the stressed 4-layer systems, Adapt3D+DVFS_TT must beat
    // both its components.
    for exp in [Experiment::Exp3, Experiment::Exp4] {
        let base = cell(exp, PolicyKind::Default, false);
        let dvfs = cell(exp, PolicyKind::DvfsTt, false);
        let alloc = cell(exp, PolicyKind::Adapt3d, false);
        let hybrid = cell(exp, PolicyKind::Adapt3dDvfsTt, false);
        assert!(
            hybrid.hotspot_pct <= dvfs.hotspot_pct + 0.5,
            "{exp}: hybrid {:.2}% must not lose to DVFS {:.2}%",
            hybrid.hotspot_pct,
            dvfs.hotspot_pct
        );
        assert!(
            hybrid.hotspot_pct < alloc.hotspot_pct,
            "{exp}: hybrid {:.2}% must beat allocation alone {:.2}%",
            hybrid.hotspot_pct,
            alloc.hotspot_pct
        );
        assert!(
            hybrid.hotspot_pct < base.hotspot_pct * 0.8,
            "{exp}: hybrid {:.2}% must clearly beat the baseline {:.2}%",
            hybrid.hotspot_pct,
            base.hotspot_pct
        );
    }
}

#[test]
fn fig3_dvfs_reduces_hot_spots_at_a_performance_price() {
    let exp = Experiment::Exp3;
    let base = cell(exp, PolicyKind::Default, false);
    let dvfs = cell(exp, PolicyKind::DvfsTt, false);
    assert!(dvfs.hotspot_pct < base.hotspot_pct);
    let norm = dvfs.normalized_performance_vs(&base);
    assert!(norm < 1.0, "throttling cannot be free: {norm:.3}");
    assert!(norm > 0.5, "but must not halve throughput either: {norm:.3}");
}

#[test]
fn fig4_dpm_reduces_hot_spot_occurrence() {
    // "a significant reduction in the occurrence of thermal hot spots is
    // achieved" with DPM (Section V-B, Figure 4 vs Figure 3).
    for exp in [Experiment::Exp3, Experiment::Exp4] {
        let without = cell(exp, PolicyKind::Default, false);
        let with = cell(exp, PolicyKind::Default, true);
        assert!(
            with.hotspot_pct <= without.hotspot_pct + 0.25,
            "{exp}: DPM must not worsen hot spots: {:.2}% vs {:.2}%",
            with.hotspot_pct,
            without.hotspot_pct
        );
        assert!(with.energy_j < without.energy_j, "{exp}: sleep states save energy");
    }
}

#[test]
fn fig5_adaptive_scheduling_tames_spatial_gradients() {
    // "Adaptive scheduling policies, which balance out the temperature on
    // the chip, outperform the other techniques by large in reducing the
    // gradients" (Section V-C). EXP-3 (split layers) shows the largest
    // gradients in our reproduction. The gradient metric needs the full
    // 8×8 grid — the 4×4 test grid blurs within-layer spreads.
    // Gradients also need the steering to settle, so this test runs the
    // full 160 s figure duration rather than the reduced test length.
    let exp = Experiment::Exp3;
    let paper_cell = |kind: PolicyKind| {
        let stack = exp.stack();
        let policy = kind.build_with_dpm(&stack, 0xACE1, true);
        let trace = generate_mix(&Benchmark::ALL, exp.num_cores(), 160.0, 2009);
        Simulator::new(SimConfig::paper_default(exp), policy).run(&trace, 160.0)
    };
    let base = paper_cell(PolicyKind::Default);
    let adapt = paper_cell(PolicyKind::Adapt3d);
    let hybrid = paper_cell(PolicyKind::Adapt3dDvfsTt);
    assert!(
        adapt.gradient_pct <= base.gradient_pct,
        "Adapt3D {:.2}% must not exceed Default {:.2}%",
        adapt.gradient_pct,
        base.gradient_pct
    );
    assert!(
        hybrid.gradient_pct <= base.gradient_pct,
        "hybrid {:.2}% must not exceed Default {:.2}%",
        hybrid.gradient_pct,
        base.gradient_pct
    );
}

#[test]
fn fig6_thermal_cycles_are_worse_on_four_layers() {
    // "In complex 3D architectures with four layers, such as EXP3, large
    // thermal cycles occur more often" (Section V-D).
    let c1 = cell(Experiment::Exp1, PolicyKind::Default, true);
    let c3 = cell(Experiment::Exp3, PolicyKind::Default, true);
    assert!(
        c3.cycle_pct >= c1.cycle_pct,
        "EXP-3 cycles {:.2}% must be at least EXP-1's {:.2}%",
        c3.cycle_pct,
        c1.cycle_pct
    );
}

#[test]
fn fig6_management_reduces_large_cycles() {
    // The managed policies must not amplify thermal cycling relative to
    // the baseline on the stressed system (paper: Adapt3D cuts the
    // frequency of large cycles; our queueing scheduler reproduces the
    // reduction for the hybrid).
    let exp = Experiment::Exp3;
    let base = cell(exp, PolicyKind::Default, true);
    let hybrid = cell(exp, PolicyKind::Adapt3dDvfsTt, true);
    assert!(
        hybrid.cycle_pct <= base.cycle_pct + 0.5,
        "hybrid cycles {:.2}% vs baseline {:.2}%",
        hybrid.cycle_pct,
        base.cycle_pct
    );
}

#[test]
fn perf_line_adaptive_cheaper_than_gating() {
    // Figure 3's performance line: stall-based management (CGate) costs
    // more than allocation-based management.
    let exp = Experiment::Exp3;
    let base = cell(exp, PolicyKind::Default, false);
    let gate = cell(exp, PolicyKind::CGate, false);
    let adapt = cell(exp, PolicyKind::Adapt3d, false);
    let gate_norm = gate.normalized_performance_vs(&base);
    let adapt_norm = adapt.normalized_performance_vs(&base);
    assert!(
        adapt_norm > gate_norm,
        "Adapt3D ({adapt_norm:.3}) must outperform CGate ({gate_norm:.3})"
    );
}

#[test]
fn all_eleven_policies_complete_the_figure_workload() {
    // Smoke test over the full figure matrix at reduced duration: every
    // (experiment, policy, dpm) cell must finish its jobs.
    for exp in Experiment::ALL {
        let stack = exp.stack();
        let trace = generate_mix(&Benchmark::ALL, exp.num_cores(), 12.0, 2009);
        for kind in PolicyKind::ALL {
            for dpm in [false, true] {
                let policy = kind.build_with_dpm(&stack, 0xACE1, dpm);
                let r = Simulator::new(SimConfig::fast(exp), policy).run(&trace, 12.0);
                assert!(r.perf.completed > 0, "{exp}/{kind}/dpm={dpm}");
                assert_eq!(r.unfinished, 0, "{exp}/{kind}/dpm={dpm} left jobs");
                assert!(r.hotspot_pct.is_finite() && (0.0..=100.0).contains(&r.hotspot_pct));
            }
        }
    }
}
