//! Property-based tests over the workspace's core data structures and
//! invariants: trace generation, scheduling queues, metrics trackers,
//! the sparse solver and the thermal network.

use proptest::prelude::*;

use therm3d_floorplan::{CoreId, Experiment};
use therm3d_metrics::{
    max_layer_gradient, HotSpotTracker, SpatialGradientTracker, ThermalCycleTracker,
};
use therm3d_policies::{Lfsr16, MultiQueue};
use therm3d_thermal::sparse::factor::factor;
use therm3d_thermal::sparse::{solve_cg, TripletMatrix};
use therm3d_thermal::{ThermalConfig, ThermalModel};
use therm3d_workload::{Benchmark, Job, TraceConfig};

fn any_benchmark() -> impl Strategy<Value = Benchmark> {
    prop::sample::select(Benchmark::ALL.to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    #[test]
    fn traces_are_sorted_and_bounded(
        bench in any_benchmark(),
        seed in 0u64..1000,
        n_cores in 1usize..32,
        duration in 5.0f64..60.0,
    ) {
        let trace = TraceConfig::new(bench, n_cores, duration).with_seed(seed).generate();
        let jobs = trace.jobs();
        for w in jobs.windows(2) {
            prop_assert!(w[0].arrival_s <= w[1].arrival_s, "arrivals must be sorted");
        }
        for j in jobs {
            prop_assert!(j.arrival_s >= 0.0 && j.arrival_s < duration);
            prop_assert!(j.work_s > 0.0 && j.work_s <= 30.0);
            prop_assert!((0.0..=1.0).contains(&j.memory_intensity));
        }
    }

    #[test]
    fn trace_offered_load_tracks_table_i(
        bench in any_benchmark(),
        seed in 0u64..50,
    ) {
        // Long traces converge to the benchmark's Table I utilization
        // (modulo lognormal sampling noise).
        let n_cores = 8;
        let duration = 600.0;
        let trace = TraceConfig::new(bench, n_cores, duration).with_seed(seed).generate();
        let offered = trace.offered_utilization(n_cores, duration);
        let target = bench.stats().avg_utilization;
        prop_assert!(
            offered > target * 0.55 && offered < target * 1.6,
            "{bench}: offered {offered:.3} vs Table I {target:.3}"
        );
    }

    #[test]
    fn queue_conserves_jobs(
        ops in prop::collection::vec((0usize..4, 0usize..4, 0.05f64..2.0), 1..120),
    ) {
        // Random enqueue/execute/migrate sequences never lose or invent
        // jobs: enqueued = completed + in-flight.
        let n_cores = 4;
        let mut q = MultiQueue::new(n_cores);
        let mut enqueued = 0u64;
        let mut now = 0.0;
        for (i, (a, b, work)) in ops.iter().enumerate() {
            match i % 3 {
                0 => {
                    let job = Job::new(enqueued, now, *work, 0.5, Benchmark::Gcc);
                    q.enqueue(CoreId(*a), job);
                    enqueued += 1;
                }
                1 => {
                    q.migrate(CoreId(*a), CoreId(*b));
                }
                _ => {
                    for c in 0..n_cores {
                        q.execute(CoreId(c), 0.1, 1.0, now);
                    }
                    now += 0.1;
                }
            }
            let in_flight = q.in_flight() as u64;
            let done = q.completed().len() as u64;
            prop_assert_eq!(in_flight + done, enqueued, "op {}", i);
        }
    }

    #[test]
    fn queue_drains_everything_eventually(
        jobs in prop::collection::vec((0usize..4, 0.05f64..1.0), 1..40),
    ) {
        let mut q = MultiQueue::new(4);
        for (i, (core, work)) in jobs.iter().enumerate() {
            q.enqueue(CoreId(*core), Job::new(i as u64, 0.0, *work, 0.0, Benchmark::Gzip));
        }
        let mut now = 0.0;
        for _ in 0..2000 {
            for c in 0..4 {
                q.execute(CoreId(c), 0.1, 1.0, now);
            }
            now += 0.1;
            if q.in_flight() == 0 {
                break;
            }
        }
        prop_assert_eq!(q.in_flight(), 0, "bounded work must drain");
        prop_assert_eq!(q.completed().len(), jobs.len());
    }

    #[test]
    fn hotspot_tracker_fraction_is_a_probability(
        temps in prop::collection::vec(prop::collection::vec(20.0f64..120.0, 4), 1..60),
    ) {
        let mut t = HotSpotTracker::new(85.0);
        for sample in &temps {
            t.record(sample);
        }
        prop_assert!((0.0..=1.0).contains(&t.fraction()));
        prop_assert!(t.peak_c() >= 20.0);
        let manual_peak = temps.iter().flatten().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!((t.peak_c() - manual_peak).abs() < 1e-12);
    }

    #[test]
    fn gradient_tracker_matches_manual_computation(
        temps in prop::collection::vec(0.0f64..100.0, 8),
    ) {
        // Two layers of four blocks each.
        let layers = [0usize, 0, 0, 0, 1, 1, 1, 1];
        let g = max_layer_gradient(&temps, &layers);
        let spread = |r: &[f64]| {
            r.iter().copied().fold(f64::NEG_INFINITY, f64::max)
                - r.iter().copied().fold(f64::INFINITY, f64::min)
        };
        let manual = spread(&temps[..4]).max(spread(&temps[4..]));
        prop_assert!((g - manual).abs() < 1e-12);

        let mut tracker = SpatialGradientTracker::new(15.0);
        tracker.record(g);
        prop_assert_eq!(tracker.fraction(), f64::from(u8::from(g > 15.0)));
    }

    #[test]
    fn cycle_tracker_never_exceeds_window_spread(
        series in prop::collection::vec(40.0f64..100.0, 12..80),
    ) {
        let window = 10;
        let mut t = ThermalCycleTracker::new(20.0, window, 1);
        for &v in &series {
            t.record(&[v]);
        }
        let global_spread = series.iter().copied().fold(f64::NEG_INFINITY, f64::max)
            - series.iter().copied().fold(f64::INFINITY, f64::min);
        prop_assert!(t.peak_delta_c() <= global_spread + 1e-12);
        prop_assert!(t.mean_delta_c() <= t.peak_delta_c() + 1e-12);
        prop_assert!((0.0..=1.0).contains(&t.fraction()));
    }

    #[test]
    fn lfsr_weighted_sampling_respects_support(
        seed in 1u16..u16::MAX,
        weights in prop::collection::vec(0.0f64..10.0, 1..16),
    ) {
        let mut rng = Lfsr16::new(seed);
        match rng.sample_weighted(&weights) {
            Some(i) => prop_assert!(weights[i] > 0.0, "picked a zero-weight index"),
            None => prop_assert!(weights.iter().all(|&w| w <= 0.0)),
        }
        let x = rng.next_f64();
        prop_assert!((0.0..1.0).contains(&x));
    }

    #[test]
    fn cg_solves_random_spd_systems(
        diag in prop::collection::vec(0.5f64..5.0, 3..10),
        seed in 0u64..100,
    ) {
        // Build a random symmetric diagonally dominant matrix (hence SPD)
        // the same way the thermal network does: conductances between
        // node pairs plus grounded terms.
        let n = diag.len();
        let mut t = TripletMatrix::new(n);
        let mut s = seed;
        let mut next = || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (s >> 33) as f64 / (1u64 << 31) as f64
        };
        for i in 0..n {
            for j in (i + 1)..n {
                if next() > 0.5 {
                    t.add_conductance(i, j, 0.1 + next());
                }
            }
        }
        for (i, &d) in diag.iter().enumerate() {
            t.add_grounded_conductance(i, d);
        }
        let a = t.to_csr();
        prop_assert!(a.is_symmetric(1e-12));
        let b: Vec<f64> = (0..n).map(|_| next() * 2.0 - 1.0).collect();
        let x0 = vec![0.0; n];
        let sol = solve_cg(&a, &b, &x0, 1e-10, 500);
        let r = a.mul(&sol.x);
        for (ri, bi) in r.iter().zip(&b) {
            prop_assert!((ri - bi).abs() < 1e-6, "CG residual too large");
        }
        // The direct LDL^T path must agree with CG on the same system
        // (it backs both the implicit integrator and steady-state init).
        let direct = factor(&a).expect("random SPD system factors").solve(&b);
        let r = a.mul(&direct);
        for (ri, bi) in r.iter().zip(&b) {
            prop_assert!((ri - bi).abs() < 1e-8, "LDL^T residual too large");
        }
        for (xi, yi) in direct.iter().zip(&sol.x) {
            prop_assert!((xi - yi).abs() < 1e-5, "direct {xi} vs CG {yi}");
        }
    }

    #[test]
    fn thermal_step_stays_finite_and_above_ambient(
        powers in prop::collection::vec(0.0f64..6.0, 16),
        dt in 0.01f64..1.0,
    ) {
        // EXP-1 has 16 blocks; arbitrary non-negative powers must never
        // produce NaNs or temperatures below ambient.
        let stack = Experiment::Exp1.stack();
        prop_assert_eq!(stack.num_blocks(), 16);
        let mut model =
            ThermalModel::new(&stack, ThermalConfig::paper_default().with_grid(3, 3));
        model.set_block_powers(&powers);
        for _ in 0..20 {
            model.step(dt);
        }
        for t in model.block_temperatures_c() {
            prop_assert!(t.is_finite());
            prop_assert!(t >= 45.0 - 1e-6, "no block may cool below ambient: {t}");
            prop_assert!(t < 400.0, "non-physical runaway: {t}");
        }
    }

    #[test]
    fn steady_state_is_a_fixed_point_of_step(
        powers in prop::collection::vec(0.0f64..4.0, 16),
    ) {
        let stack = Experiment::Exp1.stack();
        let mut model =
            ThermalModel::new(&stack, ThermalConfig::paper_default().with_grid(3, 3));
        let steady = model.initialize_steady_state(&powers);
        model.step(5.0);
        let after = model.block_temperatures_c();
        for (a, b) in steady.iter().zip(&after) {
            prop_assert!((a - b).abs() < 0.05, "steady state must not drift: {a} vs {b}");
        }
    }
}

#[test]
fn lfsr_has_full_period() {
    // The 16-bit Fibonacci LFSR used for policy randomness must have the
    // maximal 2^16 − 1 period.
    let mut rng = Lfsr16::new(0xACE1);
    let first = rng.next_u16();
    let mut period = 1u32;
    loop {
        if rng.next_u16() == first {
            break;
        }
        period += 1;
        assert!(period < 70_000, "period overflow");
    }
    assert_eq!(period, 65_535);
}
