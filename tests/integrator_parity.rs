//! End-to-end parity between the implicit default integrator and the
//! explicit RK4 golden reference: a fig3-style sweep (experiments ×
//! policies, no DPM) run on both integrators via the new `integrators`
//! sweep axis must produce the same headline metrics within stated
//! tolerances.

use therm3d_floorplan::Experiment;
use therm3d_policies::PolicyKind;
use therm3d_sweep::{run, SweepSpec};
use therm3d_thermal::Integrator;
use therm3d_workload::Benchmark;

/// Peak-temperature agreement, °C. The integrators track each other to
/// ~0.01 °C per tick (see `crates/thermal/tests/integrators.rs`); the
/// looser bound here absorbs rare policy-decision flips when a reading
/// sits exactly on a threshold.
const PEAK_TOL_C: f64 = 0.5;
/// Metric-percentage agreement, percentage points.
const PCT_TOL: f64 = 2.0;
/// Relative energy agreement (leakage feedback sees slightly different
/// temperatures, nothing more).
const ENERGY_REL_TOL: f64 = 0.01;

#[test]
fn fig3_style_sweep_agrees_across_integrators() {
    let spec = SweepSpec::new("integrator-parity")
        .with_experiments(&[Experiment::Exp2, Experiment::Exp3])
        .with_integrators(&[Integrator::ImplicitCn, Integrator::ExplicitRk4])
        .with_policies(&[PolicyKind::Default, PolicyKind::Adapt3d])
        .with_benchmarks(&[Benchmark::WebMed, Benchmark::Gzip])
        .with_sim_seconds(8.0)
        .with_grid(4, 4)
        .with_threads(0);
    let report = run(&spec).expect("sweep runs");
    assert_eq!(report.rows.len(), 2 * 2 * 2);

    let implicit: Vec<_> =
        report.rows.iter().filter(|r| r.cell.integrator == Integrator::ImplicitCn).collect();
    let rk4: Vec<_> =
        report.rows.iter().filter(|r| r.cell.integrator == Integrator::ExplicitRk4).collect();
    assert_eq!(implicit.len(), rk4.len());

    for (imp, gold) in implicit.iter().zip(&rk4) {
        // Same (experiment, policy, dpm, seed) — only the integrator
        // differs within a pair, by the canonical expansion order.
        assert_eq!(imp.cell.experiment, gold.cell.experiment);
        assert_eq!(imp.cell.policy, gold.cell.policy);
        let (a, b) = (&imp.result, &gold.result);
        let cell = imp.cell.describe();

        assert!(
            (a.peak_temp_c - b.peak_temp_c).abs() < PEAK_TOL_C,
            "{cell}: peak {:.3} vs {:.3}",
            a.peak_temp_c,
            b.peak_temp_c
        );
        for (name, x, y) in [
            ("hotspot_pct", a.hotspot_pct, b.hotspot_pct),
            ("gradient_pct", a.gradient_pct, b.gradient_pct),
            ("cycle_pct", a.cycle_pct, b.cycle_pct),
        ] {
            assert!((x - y).abs() < PCT_TOL, "{cell}: {name} {x:.3} vs {y:.3}");
        }
        assert!(
            (a.energy_j - b.energy_j).abs() < ENERGY_REL_TOL * b.energy_j,
            "{cell}: energy {:.1} J vs {:.1} J",
            a.energy_j,
            b.energy_j
        );
        assert!(
            (a.vertical_peak_c - b.vertical_peak_c).abs() < PEAK_TOL_C,
            "{cell}: vertical peak {:.3} vs {:.3}",
            a.vertical_peak_c,
            b.vertical_peak_c
        );
        assert_eq!(
            a.perf.completed, b.perf.completed,
            "{cell}: throughput must not depend on the integrator"
        );
    }
}
