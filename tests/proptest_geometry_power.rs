//! Property tests for the floorplan geometry primitives and the power
//! model's monotonicity guarantees.

use proptest::prelude::*;

use therm3d_floorplan::{Experiment, Rect};
use therm3d_power::{CorePowerInput, LeakageModel, PowerModel, PowerParams, VfTable};

fn any_rect() -> impl Strategy<Value = Rect> {
    (0.0f64..20.0, 0.0f64..20.0, 0.1f64..10.0, 0.1f64..10.0)
        .prop_map(|(x, y, w, h)| Rect::new(x, y, w, h))
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn rect_intersection_is_symmetric_and_bounded(a in any_rect(), b in any_rect()) {
        let ab = a.intersection_area(&b);
        let ba = b.intersection_area(&a);
        prop_assert!((ab - ba).abs() < 1e-12);
        prop_assert!(ab >= 0.0);
        prop_assert!(ab <= a.area().min(b.area()) + 1e-12);
        prop_assert_eq!(ab > 0.0, a.overlaps(&b), "overlap ⇔ positive intersection");
    }

    #[test]
    fn rect_self_intersection_is_area(a in any_rect()) {
        prop_assert!((a.intersection_area(&a) - a.area()).abs() < 1e-9);
        prop_assert!(a.contained_in(&a));
        let (cx, cy) = a.center();
        prop_assert!(a.contains_point(cx, cy));
    }

    #[test]
    fn shared_edge_is_symmetric_and_disjoint_from_overlap(a in any_rect(), b in any_rect()) {
        let ab = a.shared_edge_length(&b);
        prop_assert!((ab - b.shared_edge_length(&a)).abs() < 1e-12);
        prop_assert!(ab >= 0.0);
        if ab > 0.0 {
            prop_assert!(
                a.intersection_area(&b) < 1e-12,
                "abutting rectangles cannot overlap"
            );
        }
    }

    #[test]
    fn mirrored_floorplan_preserves_geometry(_dummy in 0u8..1) {
        for fp in [
            therm3d_floorplan::niagara::core_layer(),
            therm3d_floorplan::niagara::cache_layer(),
            therm3d_floorplan::niagara::mixed_layer(),
        ] {
            let m = fp.mirrored_y();
            prop_assert_eq!(m.len(), fp.len());
            prop_assert!((m.covered_area() - fp.covered_area()).abs() < 1e-9);
            // Mirroring twice is the identity.
            let mm = m.mirrored_y();
            for (a, b) in fp.blocks().iter().zip(mm.blocks()) {
                prop_assert_eq!(a.name(), b.name());
                prop_assert!((a.rect().y - b.rect().y).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn core_power_monotone_in_utilization(
        u1 in 0.0f64..1.0,
        u2 in 0.0f64..1.0,
        temp in 45.0f64..100.0,
    ) {
        let stack = Experiment::Exp1.stack();
        let m = PowerModel::new(&stack, PowerParams::paper_default(), VfTable::paper_default());
        let (lo, hi) = if u1 <= u2 { (u1, u2) } else { (u2, u1) };
        let mk = |u| CorePowerInput { utilization: u, ..CorePowerInput::busy() };
        let p_lo = m.core_power(&mk(lo), temp, 10.0);
        let p_hi = m.core_power(&mk(hi), temp, 10.0);
        prop_assert!(p_hi >= p_lo - 1e-12, "power must grow with utilization");
    }

    #[test]
    fn dvfs_levels_order_power(temp in 45.0f64..100.0, u in 0.0f64..1.0) {
        let stack = Experiment::Exp1.stack();
        let m = PowerModel::new(&stack, PowerParams::paper_default(), VfTable::paper_default());
        let mut last = f64::INFINITY;
        for level in 0..VfTable::paper_default().len() {
            let c = CorePowerInput { utilization: u, vf_index: level, ..CorePowerInput::busy() };
            let p = m.core_power(&c, temp, 10.0);
            prop_assert!(p <= last + 1e-12, "lower V/f must never cost more power");
            last = p;
        }
    }

    #[test]
    fn leakage_monotone_in_temperature(t1 in 20.0f64..110.0, t2 in 20.0f64..110.0) {
        let leak = LeakageModel::paper_default();
        let (lo, hi) = if t1 <= t2 { (t1, t2) } else { (t2, t1) };
        prop_assert!(leak.normalized(hi) >= leak.normalized(lo) - 1e-12);
        prop_assert!(leak.power_w(10.0, hi, 1.0) >= 0.0);
    }

    #[test]
    fn sleep_beats_everything(temp in 45.0f64..110.0, u in 0.0f64..1.0) {
        let stack = Experiment::Exp1.stack();
        let m = PowerModel::new(&stack, PowerParams::paper_default(), VfTable::paper_default());
        let mut asleep = CorePowerInput { utilization: u, ..CorePowerInput::busy() };
        asleep.asleep = true;
        let awake = CorePowerInput { utilization: u, ..CorePowerInput::busy() };
        prop_assert!(
            m.core_power(&asleep, temp, 10.0) < m.core_power(&awake, temp, 10.0),
            "the 0.02 W sleep state must undercut any awake state"
        );
    }
}
