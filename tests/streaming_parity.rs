//! End-to-end parity for throughput mode: a simulation fed by the
//! streaming [`JobSource`] path must produce a `RunResult` bit-identical
//! to the classic materialized [`JobTrace`] path — across every
//! experiment configuration and both integrators. Not "close": equal to
//! the last bit, because the stream replays the generator's exact RNG
//! consumption order and the engine's metric folds match the slice
//! forms operation for operation.

use therm3d::{SimConfig, Simulator};
use therm3d_floorplan::Experiment;
use therm3d_policies::PolicyKind;
use therm3d_thermal::Integrator;
use therm3d_workload::{generate_mix, stream_mix, Benchmark};

const BENCHMARKS: [Benchmark; 2] = [Benchmark::WebMed, Benchmark::Gzip];
const DURATION_S: f64 = 4.0;
const SEED: u64 = 11;

fn simulator(exp: Experiment, integrator: Integrator) -> Simulator {
    let mut cfg = SimConfig::paper_default(exp);
    cfg.thermal = cfg.thermal.with_grid(4, 4).with_integrator(integrator);
    let policy = PolicyKind::Adapt3d.build_with_dpm(&exp.stack(), 0xACE1, false);
    Simulator::new(cfg, policy)
}

#[test]
fn streamed_runs_are_bit_identical_across_experiments_and_integrators() {
    for exp in Experiment::ALL {
        for integrator in [Integrator::ImplicitCn, Integrator::ExplicitRk4] {
            let trace = generate_mix(&BENCHMARKS, exp.num_cores(), DURATION_S, SEED);
            let materialized = simulator(exp, integrator).run(&trace, DURATION_S);
            let streamed = simulator(exp, integrator)
                .run_source(stream_mix(&BENCHMARKS, exp.num_cores(), DURATION_S, SEED), DURATION_S);
            assert!(materialized.perf.completed > 0, "{exp}/{integrator:?} must simulate work");
            assert_eq!(
                streamed, materialized,
                "{exp}/{integrator:?}: streamed RunResult must be bit-identical"
            );
        }
    }
}
