//! Integration tests for the sensor-fidelity scenario axis and the
//! CLI's interaction with the engine defaults.

use therm3d::{ScenarioConfig, SensorProfile, SimConfig, Simulator};
use therm3d_floorplan::Experiment;
use therm3d_policies::PolicyKind;
use therm3d_workload::{Benchmark, TraceConfig};

fn run_with_sensor(profile: SensorProfile, secs: f64) -> therm3d::RunResult {
    let exp = Experiment::Exp3;
    let stack = exp.stack();
    let policy = PolicyKind::DvfsTt.build(&stack, 0xACE1);
    let trace =
        TraceConfig::new(Benchmark::WebHigh, stack.num_cores(), secs).with_seed(7).generate();
    let cfg = SimConfig::fast(exp)
        .with_scenario(ScenarioConfig::paper_default().with_sensor(profile).with_sensor_seed(99));
    Simulator::new(cfg, policy).run(&trace, secs)
}

#[test]
fn ideal_sensor_matches_default_config() {
    let explicit = run_with_sensor(SensorProfile::Ideal, 10.0);
    let exp = Experiment::Exp3;
    let stack = exp.stack();
    let policy = PolicyKind::DvfsTt.build(&stack, 0xACE1);
    let trace =
        TraceConfig::new(Benchmark::WebHigh, stack.num_cores(), 10.0).with_seed(7).generate();
    let default = Simulator::new(SimConfig::fast(exp), policy).run(&trace, 10.0);
    assert_eq!(explicit, default, "the default sensor is ideal");
}

#[test]
fn noisy_sensor_changes_behaviour_but_stays_deterministic() {
    let noisy = || run_with_sensor(SensorProfile::NoisyQuantized, 15.0);
    let a = noisy();
    let b = noisy();
    assert_eq!(a, b, "noise comes from a seeded stream");
    let clean = run_with_sensor(SensorProfile::Ideal, 15.0);
    assert_ne!(a, clean, "2 °C sensor noise must alter DVFS trigger timing");
    // A different sensor seed gives a different (still deterministic)
    // trajectory — the scenario carries the seed, not global state.
    let reseeded = {
        let exp = Experiment::Exp3;
        let stack = exp.stack();
        let policy = PolicyKind::DvfsTt.build(&stack, 0xACE1);
        let trace =
            TraceConfig::new(Benchmark::WebHigh, stack.num_cores(), 15.0).with_seed(7).generate();
        let cfg = SimConfig::fast(exp).with_scenario(
            ScenarioConfig::paper_default()
                .with_sensor(SensorProfile::NoisyQuantized)
                .with_sensor_seed(100),
        );
        Simulator::new(cfg, policy).run(&trace, 15.0)
    };
    assert_ne!(a, reseeded, "the sensor seed feeds the noise stream");
    // Metrics use true temperatures, so results stay physically sane.
    assert!((0.0..=100.0).contains(&a.hotspot_pct));
    assert_eq!(a.unfinished, 0);
}

#[test]
fn underreading_sensor_worsens_hot_spots() {
    // A sensor that reads 3 °C cool delays every threshold reaction.
    let clean = run_with_sensor(SensorProfile::Ideal, 25.0);
    let offset = run_with_sensor(SensorProfile::OffsetCool3C, 25.0);
    assert!(
        offset.hotspot_pct > clean.hotspot_pct,
        "under-reporting must cost hot-spot time: {:.2}% vs {:.2}%",
        offset.hotspot_pct,
        clean.hotspot_pct
    );
}

#[test]
fn cli_run_matches_library_run() {
    // The CLI's `run` path must produce exactly the library numbers.
    let cmd = therm3d_cli::parse(
        "run --exp exp1 --policy Default --benchmark gzip -t 5 --grid 4 --csv"
            .split_whitespace()
            .map(str::to_owned),
    )
    .expect("valid command line");
    let out = therm3d_cli::execute(&cmd).expect("infallible subcommand");
    let row = out.lines().nth(1).expect("csv row");

    let exp = Experiment::Exp1;
    let stack = exp.stack();
    let policy = PolicyKind::Default.build(&stack, 0xACE1);
    let trace = TraceConfig::new(Benchmark::Gzip, 8, 5.0).with_seed(2009).generate();
    let mut cfg = SimConfig::paper_default(exp);
    cfg.thermal = cfg.thermal.with_grid(4, 4);
    let r = Simulator::new(cfg, policy).run(&trace, 5.0);
    let expected_prefix = format!("Default,EXP-1,false,{:.4}", r.hotspot_pct);
    assert!(row.starts_with(&expected_prefix), "row `{row}` vs `{expected_prefix}`");
}
