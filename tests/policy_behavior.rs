//! End-to-end behavioural tests for the DTM policies: each policy must
//! produce its characteristic effect when driven by the full simulator
//! (not just in isolation).

use therm3d::{SimConfig, Simulator};
use therm3d_floorplan::Experiment;
use therm3d_policies::PolicyKind;
use therm3d_workload::{generate_mix, Benchmark, TraceConfig};

/// Runs `kind` on EXP-3 (the thermally stressed system) under a heavy
/// web workload for `secs`, fast grid, fixed seeds.
fn run_exp3(kind: PolicyKind, secs: f64, dpm: bool) -> therm3d::RunResult {
    let exp = Experiment::Exp3;
    let stack = exp.stack();
    let policy = kind.build_with_dpm(&stack, 0xACE1, dpm);
    let trace =
        TraceConfig::new(Benchmark::WebHigh, stack.num_cores(), secs).with_seed(7).generate();
    Simulator::new(SimConfig::fast(exp), policy).run(&trace, secs)
}

#[test]
fn baseline_suffers_hot_spots_on_exp3() {
    let r = run_exp3(PolicyKind::Default, 30.0, false);
    assert!(
        r.hotspot_pct > 10.0,
        "heavy load on the 4-tier stack must produce hot spots: {:.2}%",
        r.hotspot_pct
    );
    assert!(r.peak_temp_c > 85.0);
}

#[test]
fn dvfs_tt_reduces_hot_spots_and_peak() {
    let base = run_exp3(PolicyKind::Default, 30.0, false);
    let dvfs = run_exp3(PolicyKind::DvfsTt, 30.0, false);
    assert!(
        dvfs.hotspot_pct < base.hotspot_pct * 0.8,
        "DVFS_TT must cut hot spots: {:.2}% vs {:.2}%",
        dvfs.hotspot_pct,
        base.hotspot_pct
    );
    assert!(dvfs.peak_temp_c < base.peak_temp_c);
}

#[test]
fn dvfs_costs_performance() {
    let base = run_exp3(PolicyKind::Default, 30.0, false);
    let dvfs = run_exp3(PolicyKind::DvfsTt, 30.0, false);
    assert!(
        dvfs.perf.mean_turnaround_s > base.perf.mean_turnaround_s,
        "slowing cores must lengthen completions: {:.3} vs {:.3}",
        dvfs.perf.mean_turnaround_s,
        base.perf.mean_turnaround_s
    );
}

#[test]
fn clock_gating_caps_temperature() {
    let gate = run_exp3(PolicyKind::CGate, 30.0, false);
    let base = run_exp3(PolicyKind::Default, 30.0, false);
    assert!(gate.peak_temp_c < base.peak_temp_c, "gating must lower the peak");
    assert!(gate.hotspot_pct < base.hotspot_pct);
    // Stalling is the bluntest instrument: it must cost throughput.
    assert!(gate.perf.mean_turnaround_s > base.perf.mean_turnaround_s);
}

#[test]
fn migration_policy_actually_migrates() {
    let migr = run_exp3(PolicyKind::Migr, 30.0, false);
    assert!(migr.migrations > 0, "hot cores must trigger job migration");
    let base = run_exp3(PolicyKind::Default, 30.0, false);
    assert_eq!(base.migrations, 0, "the affinity baseline never migrates");
}

#[test]
fn hybrid_beats_dvfs_alone_on_exp3() {
    let dvfs = run_exp3(PolicyKind::DvfsTt, 40.0, false);
    let hybrid = run_exp3(PolicyKind::Adapt3dDvfsTt, 40.0, false);
    assert!(
        hybrid.hotspot_pct <= dvfs.hotspot_pct * 1.02,
        "the paper's hybrid must not lose to DVFS alone: {:.2}% vs {:.2}%",
        hybrid.hotspot_pct,
        dvfs.hotspot_pct
    );
}

#[test]
fn adaptive_policies_keep_performance_overhead_bounded() {
    // The paper's headline property: allocation-based management is far
    // cheaper than throttling. Allow a modest queueing premium.
    let base = run_exp3(PolicyKind::Default, 30.0, false);
    for kind in [PolicyKind::AdaptRand, PolicyKind::Adapt3d] {
        let r = run_exp3(kind, 30.0, false);
        let norm = r.normalized_performance_vs(&base);
        assert!(
            norm > 0.60,
            "{kind}: normalized performance {norm:.3} collapsed (turn {:.2}s vs {:.2}s)",
            r.perf.mean_turnaround_s,
            base.perf.mean_turnaround_s
        );
        assert_eq!(r.unfinished, 0, "{kind} must not starve the queue");
    }
}

#[test]
fn dpm_saves_energy_on_light_load() {
    let exp = Experiment::Exp2;
    let stack = exp.stack();
    let secs = 30.0;
    let trace = generate_mix(&[Benchmark::MPlayer, Benchmark::Gzip], 8, secs, 3);
    let run = |dpm| {
        let policy = PolicyKind::Default.build_with_dpm(&stack, 1, dpm);
        Simulator::new(SimConfig::fast(exp), policy).run(&trace, secs)
    };
    let base = run(false);
    let dpm = run(true);
    assert!(
        dpm.energy_j < base.energy_j * 0.9,
        "sleep states must cut energy ≥10% on multimedia load: {:.0} vs {:.0} J",
        dpm.energy_j,
        base.energy_j
    );
    assert_eq!(dpm.unfinished, 0, "wake-on-work must preserve completion");
}

#[test]
fn dpm_does_not_break_any_policy() {
    for kind in PolicyKind::ALL {
        let r = run_exp3(kind, 10.0, true);
        assert!(r.perf.completed > 0, "{kind}+DPM completed nothing");
        assert_eq!(r.unfinished, 0, "{kind}+DPM left jobs behind");
    }
}

#[test]
fn adapt3d_steers_load_toward_the_sink_side_layer() {
    // Observer-level check on EXP-3: the near-sink core layer (layer 1)
    // must absorb more utilization than the far layer (layer 3) under
    // Adapt3D, and the two must be close to equal under Default.
    let exp = Experiment::Exp3;
    let stack = exp.stack();
    let secs = 40.0;
    let trace = generate_mix(&[Benchmark::WebMed, Benchmark::WebDb], 16, secs, 11);
    let layer_util = |kind: PolicyKind| {
        let policy = kind.build(&stack, 0xACE1);
        let mut sums = vec![0.0f64; stack.num_cores()];
        let mut ticks = 0u64;
        let mut sim = Simulator::new(SimConfig::fast(exp), policy);
        sim.run_with_observer(&trace, secs, |s| {
            for (a, &u) in sums.iter_mut().zip(s.utilization) {
                *a += u;
            }
            ticks += 1;
        });
        let per_layer = |layer: usize| {
            let cores: Vec<usize> =
                stack.core_ids().filter(|&c| stack.core_layer(c) == layer).map(|c| c.0).collect();
            cores.iter().map(|&c| sums[c]).sum::<f64>() / (cores.len() as f64 * ticks as f64)
        };
        (per_layer(1), per_layer(3))
    };
    let (near, far) = layer_util(PolicyKind::Adapt3d);
    assert!(
        near > far + 0.03,
        "Adapt3D must load the near-sink layer more: near {near:.3} vs far {far:.3}"
    );
}

#[test]
fn emergency_cores_receive_no_new_jobs() {
    // Whole-run invariant: whenever a core was above 85 °C at a
    // scheduling tick, Adapt3D's probability for it is zero, so jobs keep
    // landing elsewhere. We verify via the utilization skew between the
    // hottest and coolest core on the stressed system.
    let r = run_exp3(PolicyKind::Adapt3d, 30.0, false);
    assert!(r.perf.completed > 0);
    assert_eq!(r.unfinished, 0);
}

#[test]
fn every_policy_is_deterministic_end_to_end() {
    for kind in [PolicyKind::Adapt3d, PolicyKind::Migr, PolicyKind::Adapt3dDvfsFlp] {
        let a = run_exp3(kind, 8.0, true);
        let b = run_exp3(kind, 8.0, true);
        assert_eq!(a, b, "{kind} must reproduce exactly");
    }
}

#[test]
fn policy_seed_changes_adaptive_trajectories() {
    let exp = Experiment::Exp1;
    let stack = exp.stack();
    let secs = 10.0;
    let trace = TraceConfig::new(Benchmark::WebMed, 8, secs).with_seed(5).generate();
    let run = |seed: u16| {
        let policy = PolicyKind::Adapt3d.build(&stack, seed);
        let mut placements = Vec::new();
        let mut sim = Simulator::new(SimConfig::fast(exp), policy);
        sim.run_with_observer(&trace, secs, |s| {
            placements.push(s.utilization.to_vec());
        });
        placements
    };
    assert_ne!(run(1), run(0xBEEF), "different LFSR seeds must diverge");
}

#[test]
fn dvfs_flp_derates_hot_prone_cores_statically() {
    // DVFS_FLP assigns lower V/f to high-α cores; on EXP-3 the far-layer
    // cores must run slower than the near-layer ones for the entire run.
    let exp = Experiment::Exp3;
    let stack = exp.stack();
    let secs = 10.0;
    let trace = TraceConfig::new(Benchmark::WebMed, 16, secs).with_seed(5).generate();
    let policy = PolicyKind::DvfsFlp.build(&stack, 1);
    let mut worst = vec![0usize; stack.num_cores()];
    let mut sim = Simulator::new(SimConfig::fast(exp), policy);
    sim.run_with_observer(&trace, secs, |s| {
        for (w, &v) in worst.iter_mut().zip(s.vf_index) {
            *w = (*w).max(v);
        }
    });
    let near: Vec<usize> =
        stack.core_ids().filter(|&c| stack.core_layer(c) == 1).map(|c| worst[c.0]).collect();
    let far: Vec<usize> =
        stack.core_ids().filter(|&c| stack.core_layer(c) == 3).map(|c| worst[c.0]).collect();
    let near_mean = near.iter().sum::<usize>() as f64 / near.len() as f64;
    let far_mean = far.iter().sum::<usize>() as f64 / far.len() as f64;
    assert!(
        far_mean > near_mean,
        "far-from-sink cores must sit at lower V/f: near {near_mean} vs far {far_mean}"
    );
}

#[test]
fn sleeping_cores_wake_for_work() {
    // With DPM on and a bursty trace, jobs arriving at a sleeping core
    // must still complete (wake-on-work).
    let exp = Experiment::Exp1;
    let stack = exp.stack();
    let secs = 20.0;
    let trace =
        TraceConfig::new(Benchmark::Gzip, 8, secs).with_seed(13).with_burstiness(0.8).generate();
    let policy = PolicyKind::Default.build_with_dpm(&stack, 1, true);
    let mut slept = false;
    let mut sim = Simulator::new(SimConfig::fast(exp), policy);
    let r = sim.run_with_observer(&trace, secs, |s| {
        slept |= s.asleep.iter().any(|&a| a);
    });
    assert!(slept, "the 9 %-utilization benchmark must trigger sleep");
    assert_eq!(r.unfinished, 0);
    assert_eq!(r.perf.completed, trace.len());
}

#[test]
fn migration_has_visible_cost() {
    // Each migration costs 1 ms (Section V-A); a migration-heavy run on a
    // hot system must not be faster than the baseline by more than noise.
    let base = run_exp3(PolicyKind::Default, 20.0, false);
    let migr = run_exp3(PolicyKind::Migr, 20.0, false);
    assert!(migr.migrations > 0);
    assert!(
        migr.perf.mean_turnaround_s > base.perf.mean_turnaround_s * 0.9,
        "migration cannot be free"
    );
}
