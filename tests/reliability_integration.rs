//! Simulation → reliability pipeline: the JEP122C models must respond to
//! the thermal differences the DTM policies create.

use therm3d::{SimConfig, Simulator};
use therm3d_floorplan::Experiment;
use therm3d_policies::PolicyKind;
use therm3d_reliability::{CoffinManson, ReliabilityReport};
use therm3d_repro::TempHistory;
use therm3d_workload::{generate_mix, Benchmark};

fn history(kind: PolicyKind, dpm: bool, secs: f64) -> TempHistory {
    let exp = Experiment::Exp3;
    let stack = exp.stack();
    let policy = kind.build_with_dpm(&stack, 0xACE1, dpm);
    let trace = generate_mix(&Benchmark::ALL, exp.num_cores(), secs, 2009);
    let mut sim = Simulator::new(SimConfig::fast(exp), policy);
    let mut h = TempHistory::new(stack.num_cores());
    sim.run_with_observer(&trace, secs, |s| h.record(s));
    h
}

fn worst_core_report(h: &TempHistory) -> ReliabilityReport {
    (0..h.n_cores())
        .map(|c| ReliabilityReport::from_series(&h.core_series(c), 0.1))
        .max_by(|a, b| a.em_acceleration.total_cmp(&b.em_acceleration))
        .expect("at least one core")
}

#[test]
fn thermal_management_buys_back_em_lifetime() {
    let base = worst_core_report(&history(PolicyKind::Default, false, 40.0));
    let hybrid = worst_core_report(&history(PolicyKind::Adapt3dDvfsTt, false, 40.0));
    assert!(
        hybrid.em_acceleration < base.em_acceleration,
        "the hybrid must age the worst core slower: {:.2} vs {:.2}",
        hybrid.em_acceleration,
        base.em_acceleration
    );
    assert!(hybrid.em_relative_mttf > base.em_relative_mttf);
}

#[test]
fn dpm_increases_cycling_damage() {
    // Section V-D: "switching to sleep state causes cycles large enough
    // to degrade reliability" — the fatigue model must see it.
    let cm = CoffinManson::jep122c();
    let without = history(PolicyKind::Default, false, 40.0);
    let with = history(PolicyKind::Default, true, 40.0);
    let damage = |h: &TempHistory| {
        (0..h.n_cores()).map(|c| cm.damage_per_hour(&h.core_series(c), 0.1)).sum::<f64>()
    };
    let d_without = damage(&without);
    let d_with = damage(&with);
    assert!(
        d_with > d_without,
        "sleep transitions must add fatigue damage: {d_without:.2} vs {d_with:.2}"
    );
}

#[test]
fn hotter_stacks_age_faster() {
    let exp2 = {
        let stack = Experiment::Exp2.stack();
        let policy = PolicyKind::Default.build(&stack, 0xACE1);
        let trace = generate_mix(&Benchmark::ALL, 8, 30.0, 2009);
        let mut sim = Simulator::new(SimConfig::fast(Experiment::Exp2), policy);
        let mut h = TempHistory::new(8);
        sim.run_with_observer(&trace, 30.0, |s| h.record(s));
        worst_core_report(&h)
    };
    let exp3 = worst_core_report(&history(PolicyKind::Default, false, 30.0));
    assert!(
        exp3.em_acceleration > exp2.em_acceleration * 1.5,
        "the 4-layer stack must age much faster: {:.2} vs {:.2}",
        exp3.em_acceleration,
        exp2.em_acceleration
    );
    assert!(exp3.nbti_relative_lifetime < exp2.nbti_relative_lifetime);
}

#[test]
fn report_is_deterministic() {
    let a = worst_core_report(&history(PolicyKind::Adapt3d, true, 15.0));
    let b = worst_core_report(&history(PolicyKind::Adapt3d, true, 15.0));
    assert_eq!(a, b);
}
