//! Cross-crate physics integration tests: the RC thermal model, the power
//! model and the floorplans must compose into a physically sensible
//! system (conservation, monotonicity, convergence, stacking effects).

use therm3d_floorplan::{Experiment, StackOrder};
use therm3d_power::{CorePowerInput, PowerModel, PowerParams, VfTable};
use therm3d_thermal::{ThermalConfig, ThermalModel};

fn fast_thermal() -> ThermalConfig {
    ThermalConfig::paper_default().with_grid(4, 4)
}

/// All-busy steady state with leakage feedback, returning block temps.
fn busy_steady(exp: Experiment) -> Vec<f64> {
    let stack = exp.stack();
    let mut model = ThermalModel::new(&stack, fast_thermal());
    let power = PowerModel::new(&stack, PowerParams::paper_default(), VfTable::paper_default());
    let busy = vec![CorePowerInput::busy(); stack.num_cores()];
    let mut temps = vec![45.0; stack.num_blocks()];
    for _ in 0..4 {
        let p = power.block_powers(&busy, &temps);
        temps = model.initialize_steady_state(&p);
    }
    temps
}

fn peak(temps: &[f64]) -> f64 {
    temps.iter().copied().fold(f64::NEG_INFINITY, f64::max)
}

#[test]
fn steady_state_sits_above_ambient() {
    for exp in Experiment::ALL {
        let temps = busy_steady(exp);
        for (i, &t) in temps.iter().enumerate() {
            assert!(t > 45.0, "{exp}: block {i} at {t} °C is below ambient");
            assert!(t < 150.0, "{exp}: block {i} at {t} °C is non-physical");
        }
    }
}

#[test]
fn more_power_means_hotter_everywhere() {
    let stack = Experiment::Exp2.stack();
    let mut model = ThermalModel::new(&stack, fast_thermal());
    let lo = vec![1.0; stack.num_blocks()];
    let hi = vec![2.0; stack.num_blocks()];
    let t_lo = model.initialize_steady_state(&lo);
    let t_hi = model.initialize_steady_state(&hi);
    for (a, b) in t_lo.iter().zip(&t_hi) {
        assert!(b > a, "doubling power must raise every block: {a} vs {b}");
    }
}

#[test]
fn steady_state_scales_linearly_in_power() {
    // The RC network without leakage feedback is linear: temperature rise
    // above ambient doubles when power doubles.
    let stack = Experiment::Exp1.stack();
    let mut model = ThermalModel::new(&stack, fast_thermal());
    let p1 = vec![0.5; stack.num_blocks()];
    let p2 = vec![1.0; stack.num_blocks()];
    let t1 = model.initialize_steady_state(&p1);
    let t2 = model.initialize_steady_state(&p2);
    for (a, b) in t1.iter().zip(&t2) {
        let rise1 = a - 45.0;
        let rise2 = b - 45.0;
        assert!(
            (rise2 - 2.0 * rise1).abs() < 0.02 * rise2.abs().max(1e-9),
            "linearity violated: {rise1} vs {rise2}"
        );
    }
}

#[test]
fn sink_temperature_reflects_total_power() {
    // At steady state all heat leaves through the convection resistance:
    // T_sink − T_ambient = P_total · R_conv (Table II: 0.1 K/W).
    let stack = Experiment::Exp3.stack();
    let mut model = ThermalModel::new(&stack, fast_thermal());
    let powers = vec![1.5; stack.num_blocks()];
    let total: f64 = powers.iter().sum();
    model.initialize_steady_state(&powers);
    let expected = 45.0 + total * 0.1;
    let sink = model.sink_temperature_c();
    assert!(
        (sink - expected).abs() < 0.05,
        "sink at {sink} °C, conservation predicts {expected} °C"
    );
}

#[test]
fn transient_converges_to_steady_state() {
    let stack = Experiment::Exp2.stack();
    let mut steady_model = ThermalModel::new(&stack, fast_thermal());
    let powers: Vec<f64> = (0..stack.num_blocks()).map(|i| 0.5 + 0.1 * i as f64).collect();
    let steady = steady_model.initialize_steady_state(&powers);

    let mut transient = ThermalModel::new(&stack, fast_thermal());
    transient.reset_uniform(45.0);
    transient.set_block_powers(&powers);
    // March far past the package time constant (R·C ≈ 14 s).
    for _ in 0..3000 {
        transient.step(0.1);
    }
    let reached = transient.block_temperatures_c();
    for (i, (a, b)) in steady.iter().zip(&reached).enumerate() {
        assert!((a - b).abs() < 0.3, "block {i}: transient {b} °C never reached steady {a} °C");
    }
}

#[test]
fn step_size_does_not_change_the_answer() {
    // The adaptive RK4 integrator must give the same trajectory whether
    // the caller asks for one 1 s step or ten 100 ms steps.
    let stack = Experiment::Exp1.stack();
    let powers = vec![1.0; stack.num_blocks()];
    let run = |dt: f64, n: usize| {
        let mut m = ThermalModel::new(&stack, fast_thermal());
        m.reset_uniform(50.0);
        m.set_block_powers(&powers);
        for _ in 0..n {
            m.step(dt);
        }
        m.block_temperatures_c()
    };
    let coarse = run(1.0, 10);
    let fine = run(0.1, 100);
    for (a, b) in coarse.iter().zip(&fine) {
        assert!((a - b).abs() < 0.05, "step-size sensitivity: {a} vs {b}");
    }
}

#[test]
fn four_layer_stacks_run_hotter_than_two_layer() {
    let p2 = peak(&busy_steady(Experiment::Exp2));
    let p4 = peak(&busy_steady(Experiment::Exp4));
    assert!(p4 > p2 + 10.0, "stacking four active layers must cost well over 10 °C: {p2} vs {p4}");
    let p1 = peak(&busy_steady(Experiment::Exp1));
    let p3 = peak(&busy_steady(Experiment::Exp3));
    assert!(p3 > p1 + 10.0, "split config: {p1} vs {p3}");
}

#[test]
fn upper_core_layer_is_hotter_than_lower() {
    // EXP-3 has core layers at 1 and 3 (default order); the one further
    // from the sink must run hotter under identical load.
    let exp = Experiment::Exp3;
    let stack = exp.stack();
    let temps = busy_steady(exp);
    let mean_core_temp = |layer: usize| {
        let cores: Vec<f64> = stack
            .sites()
            .iter()
            .enumerate()
            .filter(|(_, s)| s.layer == layer && s.kind == therm3d_floorplan::UnitKind::Core)
            .map(|(i, _)| temps[i])
            .collect();
        assert!(!cores.is_empty(), "layer {layer} should hold cores");
        cores.iter().sum::<f64>() / cores.len() as f64
    };
    let lower = mean_core_temp(1);
    let upper = mean_core_temp(3);
    assert!(
        upper > lower + 1.0,
        "core layer far from sink must be hotter: L1 {lower} vs L3 {upper}"
    );
}

#[test]
fn core_orientation_changes_the_thermal_picture() {
    // Bonding the core die to the spreader (CoresNearSink) must cool the
    // cores relative to the default orientation.
    let far = Experiment::Exp1.stack_with_order(StackOrder::CoresFarFromSink);
    let near = Experiment::Exp1.stack_with_order(StackOrder::CoresNearSink);
    let run = |stack: &therm3d_floorplan::Stack3d| {
        let mut model = ThermalModel::new(stack, fast_thermal());
        let power = PowerModel::new(stack, PowerParams::paper_default(), VfTable::paper_default());
        let busy = vec![CorePowerInput::busy(); stack.num_cores()];
        let temps = vec![45.0; stack.num_blocks()];
        let p = power.block_powers(&busy, &temps);
        let t = model.initialize_steady_state(&p);
        stack.core_ids().map(|c| t[stack.core_block_index(c)]).fold(f64::NEG_INFINITY, f64::max)
    };
    let hot_far = run(&far);
    let hot_near = run(&near);
    assert!(
        hot_far > hot_near + 1.0,
        "cores far from the sink must be hotter: {hot_far} vs {hot_near}"
    );
}

#[test]
fn leakage_feedback_raises_steady_temperatures() {
    let stack = Experiment::Exp3.stack();
    let no_leak = {
        let mut params = PowerParams::paper_default();
        params.leakage = therm3d_power::LeakageModel::disabled();
        let power = PowerModel::new(&stack, params, VfTable::paper_default());
        let mut model = ThermalModel::new(&stack, fast_thermal());
        let busy = vec![CorePowerInput::busy(); stack.num_cores()];
        let temps = vec![45.0; stack.num_blocks()];
        let p = power.block_powers(&busy, &temps);
        peak(&model.initialize_steady_state(&p))
    };
    let with_leak = peak(&busy_steady(Experiment::Exp3));
    assert!(
        with_leak > no_leak + 2.0,
        "temperature-dependent leakage must add several degrees: {no_leak} vs {with_leak}"
    );
}

#[test]
fn finer_grids_converge() {
    // 8×8 vs 12×12 peak temperatures agree within a degree — the figure
    // resolution is converged.
    let stack = Experiment::Exp2.stack();
    let powers: Vec<f64> = stack
        .sites()
        .iter()
        .map(|s| if s.kind == therm3d_floorplan::UnitKind::Core { 3.0 } else { 1.0 })
        .collect();
    let peak_at = |rows, cols| {
        let mut m = ThermalModel::new(&stack, ThermalConfig::paper_default().with_grid(rows, cols));
        peak(&m.initialize_steady_state(&powers))
    };
    let p8 = peak_at(8, 8);
    let p12 = peak_at(12, 12);
    assert!((p8 - p12).abs() < 1.0, "grid sensitivity too high: {p8} vs {p12}");
}

#[test]
fn tsv_density_lowers_interface_resistivity() {
    use therm3d_thermal::tsv::joint_resistivity_for_overhead;
    // Figure 2: joint resistivity falls monotonically with via density
    // from the bulk 0.25 m·K/W.
    let mut last = joint_resistivity_for_overhead(0.0);
    assert!((last - 0.25).abs() < 1e-9, "zero vias = bulk interface material");
    for pct in [0.002, 0.005, 0.01, 0.02, 0.05] {
        let r = joint_resistivity_for_overhead(pct);
        assert!(r < last, "resistivity must fall with density: {r} at {pct}");
        last = r;
    }
    // Copper-limited asymptote stays positive.
    assert!(joint_resistivity_for_overhead(0.9) > 0.0);
}

#[test]
fn mirrored_layers_do_not_change_totals() {
    // Anti-aligned bonding is a pure in-plane transform: same block
    // count, same total power, same steady-state *average* temperature
    // within a few tenths of a degree (only the spatial pattern shifts).
    let aligned = therm3d_floorplan::niagara::mixed_layer();
    let mirrored = aligned.mirrored_y();
    assert_eq!(aligned.len(), mirrored.len());
    let area_a: f64 = aligned.blocks().iter().map(|b| b.area()).sum();
    let area_m: f64 = mirrored.blocks().iter().map(|b| b.area()).sum();
    assert!((area_a - area_m).abs() < 1e-9);
    for b in aligned.blocks() {
        let m = mirrored.block(b.name()).expect("mirroring keeps names");
        assert_eq!(b.kind(), m.kind());
        assert!((b.area() - m.area()).abs() < 1e-12);
    }
}

#[test]
fn vertical_gradients_stay_within_a_few_degrees() {
    // Section V-C: "the vertical gradients between adjacent layers are
    // limited to a few degrees only, due to the fact that the interlayer
    // material is thin and has sufficient conductivity." Run the most
    // stressed system under heavy load and check the claim end to end.
    use therm3d::{SimConfig, Simulator};
    use therm3d_policies::PolicyKind;
    use therm3d_workload::{Benchmark, TraceConfig};

    let exp = Experiment::Exp3;
    let stack = exp.stack();
    let trace =
        TraceConfig::new(Benchmark::WebHigh, stack.num_cores(), 20.0).with_seed(7).generate();
    let policy = PolicyKind::Default.build(&stack, 1);
    let r = Simulator::new(SimConfig::paper_default(exp), policy).run(&trace, 20.0);
    assert!(r.vertical_peak_c > 0.0, "vertically adjacent blocks cannot be isothermal");
    assert!(
        r.vertical_peak_c < 10.0,
        "vertical gradients must stay at a few degrees: {:.2} °C",
        r.vertical_peak_c
    );
    assert!(r.vertical_mean_c <= r.vertical_peak_c);
}
