//! DPM energy study: sleep states save energy but create thermal cycles.
//!
//! Section V-D of the paper reports the central tension of dynamic power
//! management on 3D chips: fixed-timeout DPM cuts energy on light loads
//! (multimedia playback here), yet switching cores in and out of the
//! 0.02 W sleep state produces exactly the large ΔT swings that drive
//! thermal-cycling failures — and the effect compounds on 4-layer stacks.
//! Adapt3D recovers most of the cycle reduction without giving up the
//! energy win.
//!
//! This example runs an MPlayer-style light workload on EXP-2 and EXP-3
//! with DPM off/on, for the Default and Adapt3D policies, and prints the
//! energy / thermal-cycle trade-off plus a ΔT histogram built with
//! [`therm3d_repro::CycleHistogram`].
//!
//! Run with: `cargo run --example dpm_energy_study`

use therm3d::{RunResult, SimConfig, Simulator};
use therm3d_floorplan::Experiment;
use therm3d_policies::PolicyKind;
use therm3d_repro::CycleHistogram;
use therm3d_workload::{generate_mix, Benchmark};

const SIM_SECONDS: f64 = 120.0;

fn run(experiment: Experiment, kind: PolicyKind, dpm: bool) -> (RunResult, CycleHistogram) {
    let stack = experiment.stack();
    let policy = kind.build_with_dpm(&stack, 0xACE1, dpm);
    let trace = generate_mix(
        &[Benchmark::MPlayer, Benchmark::MPlayerWeb],
        experiment.num_cores(),
        SIM_SECONDS,
        11,
    );
    let mut sim = Simulator::new(SimConfig::paper_default(experiment), policy);
    // 5 °C bins over a 5 s (50-tick) sliding window, as in Figure 6.
    let mut hist = CycleHistogram::new(5.0, 50, stack.num_cores());
    let result = sim.run_with_observer(&trace, SIM_SECONDS, |s| hist.record(s));
    (result, hist)
}

fn main() {
    println!("DPM energy/reliability study: multimedia workload, {SIM_SECONDS:.0} s simulated\n");

    for experiment in [Experiment::Exp2, Experiment::Exp3] {
        println!(
            "── {experiment} ({} layers, {} cores) ──",
            experiment.layer_count(),
            experiment.num_cores()
        );
        println!(
            "{:<22} {:>9} {:>9} {:>8} {:>9}",
            "configuration", "energy J", "mean W", "cycle%", "ΔT>20°C"
        );

        for kind in [PolicyKind::Default, PolicyKind::Adapt3d] {
            for dpm in [false, true] {
                let (result, hist) = run(experiment, kind, dpm);
                let label = format!("{}{}", kind.label(), if dpm { "+DPM" } else { "" });
                println!(
                    "{:<22} {:>9.0} {:>9.2} {:>8.2} {:>8.1}%",
                    label,
                    result.energy_j,
                    result.mean_power_w,
                    result.cycle_pct,
                    100.0 * hist.tail_fraction(20.0),
                );
            }
        }

        // ΔT distribution for the default policy with DPM — the shape that
        // motivates Figure 6 (sleep transitions fatten the tail).
        let (_, hist) = run(experiment, PolicyKind::Default, true);
        println!("\n  ΔT histogram, Default+DPM (5 °C bins over a 5 s window):");
        let total = hist.total().max(1);
        for (i, &count) in hist.counts().iter().enumerate() {
            if count == 0 {
                continue;
            }
            let pct = 100.0 * count as f64 / total as f64;
            let bar_len = (pct / 2.0).round() as usize;
            println!(
                "    {:>2}-{:<2} °C {:>5.1}% {}",
                i * 5,
                (i + 1) * 5,
                pct,
                "#".repeat(bar_len.min(50))
            );
        }
        println!();
    }

    println!(
        "reading: DPM cuts energy on light load; the cost is a fatter ΔT tail \
         (more >20 °C cycles), worst on the 4-layer stack. Adapt3D keeps the \
         energy saving while flattening the cycle distribution."
    );
}
