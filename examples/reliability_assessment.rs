//! Reliability assessment: from thermal metrics to lifetime numbers.
//!
//! The paper motivates DTM with JEDEC's failure mechanisms — hot spots
//! accelerate electromigration, large ΔT swings fatigue metal (16× more
//! failures when ΔT goes from 10 to 20 °C), and sustained heat consumes
//! NBTI timing margin — but reports only the thermal metrics. This
//! example closes the loop: it runs the 4-tier EXP-3 system under a
//! server mix with four policies, feeds every core's temperature history
//! into the `therm3d-reliability` models, and prints per-policy
//! electromigration acceleration, cycling damage and NBTI lifetime.
//!
//! Run with: `cargo run --example reliability_assessment`

use therm3d::{SimConfig, Simulator};
use therm3d_floorplan::Experiment;
use therm3d_policies::PolicyKind;
use therm3d_reliability::{CoffinManson, ReliabilityReport};
use therm3d_repro::TempHistory;
use therm3d_workload::{generate_mix, Benchmark};

const SIM_SECONDS: f64 = 120.0;

fn assess(kind: PolicyKind, dpm: bool) -> (ReliabilityReport, f64) {
    let exp = Experiment::Exp3;
    let stack = exp.stack();
    let policy = kind.build_with_dpm(&stack, 0xACE1, dpm);
    let trace = generate_mix(&Benchmark::ALL, exp.num_cores(), SIM_SECONDS, 2009);
    let mut sim = Simulator::new(SimConfig::paper_default(exp), policy);
    let mut history = TempHistory::new(stack.num_cores());
    sim.run_with_observer(&trace, SIM_SECONDS, |s| history.record(s));

    // Worst core = reliability-limiting component. Assess every core and
    // keep the one with the highest electromigration acceleration.
    let mut worst: Option<ReliabilityReport> = None;
    let mut total_damage = 0.0;
    let cm = CoffinManson::jep122c();
    for core in 0..history.n_cores() {
        let series = history.core_series(core);
        let report = ReliabilityReport::from_series(&series, 0.1);
        total_damage += cm.damage_per_hour(&series, 0.1);
        if worst.as_ref().is_none_or(|w| report.em_acceleration > w.em_acceleration) {
            worst = Some(report);
        }
    }
    (worst.expect("at least one core"), total_damage / history.n_cores() as f64)
}

fn main() {
    println!(
        "reliability assessment on EXP-3 (4 tiers, 16 cores), {SIM_SECONDS:.0} s server mix\n"
    );
    println!("worst-core figures vs a 60 °C reference die:");
    println!("{}", ReliabilityReport::table_header());

    let policies = [
        (PolicyKind::Default, false),
        (PolicyKind::Default, true),
        (PolicyKind::DvfsTt, false),
        (PolicyKind::Adapt3d, false),
        (PolicyKind::Adapt3dDvfsTt, false),
        (PolicyKind::Adapt3dDvfsTt, true),
    ];

    let mut chip_damage = Vec::new();
    for (kind, dpm) in policies {
        let label = format!("{}{}", kind.label(), if dpm { "+DPM" } else { "" });
        let (report, mean_damage) = assess(kind, dpm);
        println!("{}", report.table_row(&label));
        chip_damage.push((label, mean_damage));
    }

    println!("\nchip-mean thermal-cycling damage (equivalent 10 °C cycles per hour):");
    let max = chip_damage.iter().map(|d| d.1).fold(1e-12, f64::max);
    for (label, damage) in &chip_damage {
        let width = (damage / max * 40.0).round() as usize;
        println!("  {label:<22} {} {damage:8.2}", "#".repeat(width.min(40)));
    }

    println!(
        "\nreading: management that trims hot spots (DVFS, the hybrid) buys back \
         electromigration lifetime on the worst core; DPM trades some of that for \
         extra cycling damage — the paper's Section V-D trade-off expressed in \
         JEP122C units."
    );
}
