//! Four-layer stack design exploration: how the number of layers and the
//! logic/memory arrangement interact with the DTM policy.
//!
//! The paper's headline architectural result is that 3D-aware scheduling
//! matters *more* as the stack grows: on the 4-tier systems (EXP-3/4) the
//! Adapt3D+DVFS hybrids cut hot spots 20–40 % below DVFS alone, while on
//! 2 tiers the gap is small. This example reproduces that design study:
//! it runs a mixed server workload on all four configurations, prints the
//! per-layer steady temperatures an architect would look at first, and
//! then compares DVFS-only against the hybrid on each stack.
//!
//! Run with: `cargo run --example four_layer_stack_design`

use therm3d::{SimConfig, Simulator};
use therm3d_floorplan::{Experiment, UnitKind};
use therm3d_policies::PolicyKind;
use therm3d_power::{CorePowerInput, PowerModel, PowerParams, VfTable};
use therm3d_thermal::{ThermalConfig, ThermalModel};
use therm3d_workload::{generate_mix, Benchmark};

const SIM_SECONDS: f64 = 60.0;

/// Steady-state per-layer mean core temperature with every core active —
/// the static design-time view (no scheduling).
fn steady_layer_profile(experiment: Experiment) -> Vec<(usize, f64, usize)> {
    let stack = experiment.stack();
    let mut thermal = ThermalModel::new(&stack, ThermalConfig::paper_default());
    let power = PowerModel::new(&stack, PowerParams::paper_default(), VfTable::paper_default());

    let busy = vec![CorePowerInput::busy(); stack.num_cores()];
    let mut temps = vec![45.0; stack.num_blocks()];
    // Fixed-point iterate the leakage/temperature loop.
    for _ in 0..4 {
        let powers = power.block_powers(&busy, &temps);
        temps = thermal.initialize_steady_state(&powers);
    }

    (0..stack.layer_count())
        .map(|layer| {
            let cores: Vec<f64> = stack
                .sites()
                .iter()
                .enumerate()
                .filter(|(_, s)| s.layer == layer && s.kind == UnitKind::Core)
                .map(|(i, _)| temps[i])
                .collect();
            let mean = if cores.is_empty() {
                let all: Vec<f64> = stack
                    .sites()
                    .iter()
                    .enumerate()
                    .filter(|(_, s)| s.layer == layer)
                    .map(|(i, _)| temps[i])
                    .collect();
                all.iter().sum::<f64>() / all.len() as f64
            } else {
                cores.iter().sum::<f64>() / cores.len() as f64
            };
            (layer, mean, cores.len())
        })
        .collect()
}

fn hotspot_pct(experiment: Experiment, kind: PolicyKind) -> f64 {
    let stack = experiment.stack();
    let policy = kind.build(&stack, 0xACE1);
    let trace = generate_mix(
        &[Benchmark::WebHigh, Benchmark::WebMed, Benchmark::WebDb],
        experiment.num_cores(),
        SIM_SECONDS,
        2009,
    );
    let mut sim = Simulator::new(SimConfig::paper_default(experiment), policy);
    sim.run(&trace, SIM_SECONDS).hotspot_pct
}

fn main() {
    println!("3D stack design study: 2 vs 4 layers, split vs mixed ({SIM_SECONDS:.0} s runs)\n");

    println!("static view — all-cores-busy steady state, °C per layer");
    println!("(layer 0 touches the heat spreader; higher layers cool worse)\n");
    for experiment in Experiment::ALL {
        let profile = steady_layer_profile(experiment);
        print!(
            "  {experiment} ({} layers, {} cores): ",
            experiment.layer_count(),
            experiment.num_cores()
        );
        let rows: Vec<String> = profile
            .iter()
            .map(|(layer, mean, n)| {
                if *n > 0 {
                    format!("L{layer} {mean:.1}°C ({n} cores)")
                } else {
                    format!("L{layer} {mean:.1}°C (memory)")
                }
            })
            .collect();
        println!("{}", rows.join(", "));
    }

    println!("\ndynamic view — hot-spot residency under a web/DB server mix");
    println!("{:<8} {:>10} {:>16} {:>10}", "config", "DVFS_TT %", "Adapt3D+DVFS %", "reduction");
    for experiment in Experiment::ALL {
        let dvfs = hotspot_pct(experiment, PolicyKind::DvfsTt);
        let hybrid = hotspot_pct(experiment, PolicyKind::Adapt3dDvfsTt);
        let reduction = if dvfs > 0.0 { 100.0 * (dvfs - hybrid) / dvfs } else { 0.0 };
        println!(
            "{:<8} {:>10.2} {:>16.2} {:>9.0}%",
            experiment.to_string(),
            dvfs,
            hybrid,
            reduction
        );
    }

    println!(
        "\nreading: the hybrid's advantage grows with the layer count — the paper \
         reports 20–40 % fewer hot spots than DVFS alone on EXP-3/4, and only a \
         limited benefit on EXP-1."
    );
}
