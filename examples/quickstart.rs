//! Quickstart: simulate one 3D multicore system under two scheduling
//! policies and compare their thermal profiles.
//!
//! This is the smallest end-to-end use of the public API: build a stack
//! (EXP-3, the 4-tier, 16-core system where 3D thermal stress is most
//! visible), generate a Table I workload, run the OS default load
//! balancer and the paper's Adapt3D+DVFS hybrid, and print the hot-spot
//! / gradient / cycle metrics of Figures 3–6.
//!
//! Run with: `cargo run --example quickstart`

use therm3d::{RunResult, SimConfig, Simulator};
use therm3d_floorplan::Experiment;
use therm3d_policies::PolicyKind;
use therm3d_workload::{Benchmark, TraceConfig};

fn run(kind: PolicyKind, sim_seconds: f64) -> RunResult {
    let experiment = Experiment::Exp3;
    let stack = experiment.stack();

    // Deterministic policy + workload: same seeds, same numbers.
    let policy = kind.build(&stack, 0xACE1);
    let trace = TraceConfig::new(Benchmark::WebHigh, stack.num_cores(), sim_seconds)
        .with_seed(42)
        .generate();
    println!(
        "  {} jobs over {:.0} s (offered load {:.0} %)",
        trace.len(),
        sim_seconds,
        100.0 * trace.offered_utilization(stack.num_cores(), sim_seconds)
    );

    let mut sim = Simulator::new(SimConfig::paper_default(experiment), policy);
    sim.run(&trace, sim_seconds)
}

fn main() {
    let sim_seconds = 60.0;
    println!("therm3d quickstart: EXP-3 (4 tiers, 16 cores), Web-high workload\n");

    println!("running {} ...", PolicyKind::Default.label());
    let base = run(PolicyKind::Default, sim_seconds);
    println!("running {} ...", PolicyKind::Adapt3dDvfsTt.label());
    let adapt = run(PolicyKind::Adapt3dDvfsTt, sim_seconds);

    println!("\n{}", RunResult::table_header());
    println!("{}", base.table_row());
    println!("{}", adapt.table_row());

    println!(
        "\nAdapt3D&DVFS_TT vs Default: hot spots {:.2}% → {:.2}%, \
         gradients {:.2}% → {:.2}%, performance {:.3}× (1.0 = no cost)",
        base.hotspot_pct,
        adapt.hotspot_pct,
        base.gradient_pct,
        adapt.gradient_pct,
        adapt.normalized_performance_vs(&base),
    );
}
