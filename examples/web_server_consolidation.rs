//! Web-server consolidation: the workload the paper's introduction
//! motivates — a Niagara-class chip hosting web serving plus a database —
//! evaluated at two consolidation densities.
//!
//! A data-center operator consolidating a web tier (Web-high) and a
//! database (Web&DB) onto one 3D chip must pick (a) how many tiers to
//! stack (EXP-2's 2-layer, 8-core system vs EXP-4's 4-layer, 16-core
//! system) and (b) a DTM policy. This example sweeps both choices and
//! prints the hot-spot and gradient numbers plus the hottest-core trace
//! for the interesting policies, using the
//! [`therm3d_repro::TempHistory`] observer.
//!
//! Run with: `cargo run --example web_server_consolidation`

use therm3d::{RunResult, SimConfig, Simulator};
use therm3d_floorplan::Experiment;
use therm3d_policies::PolicyKind;
use therm3d_repro::textplot::downsample;
use therm3d_repro::{bar, sparkline, TempHistory};
use therm3d_workload::{generate_mix, Benchmark};

const SIM_SECONDS: f64 = 90.0;

/// The consolidation mix: one busy web tier plus the mixed web/database
/// benchmark of Table I.
fn consolidation_trace(experiment: Experiment) -> therm3d_workload::JobTrace {
    generate_mix(&[Benchmark::WebHigh, Benchmark::WebDb], experiment.num_cores(), SIM_SECONDS, 7)
}

fn run(experiment: Experiment, kind: PolicyKind) -> (RunResult, TempHistory) {
    let stack = experiment.stack();
    let policy = kind.build(&stack, 0xACE1);
    let trace = consolidation_trace(experiment);
    let mut sim = Simulator::new(SimConfig::paper_default(experiment), policy);
    let mut history = TempHistory::new(stack.num_cores());
    let result = sim.run_with_observer(&trace, SIM_SECONDS, |s| history.record(s));
    (result, history)
}

fn main() {
    let policies = [
        PolicyKind::Default,
        PolicyKind::Migr,
        PolicyKind::AdaptRand,
        PolicyKind::Adapt3d,
        PolicyKind::Adapt3dDvfsTt,
    ];

    println!(
        "web-server consolidation: 2-tier vs 4-tier stacking ({SIM_SECONDS:.0} s simulated)\n"
    );
    println!("workload: Web-high (92.9 % util) + Web&DB (75.1 % util), Table I statistics\n");

    for experiment in [Experiment::Exp2, Experiment::Exp4] {
        let arrangement = if experiment.layer_count() == 2 {
            "2 tiers, 8 cores: thermally safe but half the throughput"
        } else {
            "4 tiers, 16 cores: double density, double the thermal stress"
        };
        println!("── {experiment}: {arrangement} ──");
        println!(
            "{:<20} {:>7} {:>7} {:>7} {:>7}  hottest-core trace",
            "policy", "hot%", "grad%", "peak°C", "perf"
        );

        let mut baseline: Option<RunResult> = None;
        for kind in policies {
            let (result, history) = run(experiment, kind);
            let perf = baseline.as_ref().map_or(1.0, |b| result.normalized_performance_vs(b));
            let trace = downsample(&history.max_series(), 40);
            println!(
                "{:<20} {:>7.2} {:>7.2} {:>7.1} {:>7.3}  {}",
                kind.label(),
                result.hotspot_pct,
                result.gradient_pct,
                result.peak_temp_c,
                perf,
                sparkline(&trace),
            );
            if baseline.is_none() {
                baseline = Some(result);
            }
        }
        println!();
    }

    // Summary bar chart across the arrangements for the paper's policy.
    println!("hot-spot residency, Adapt3D vs Default (shorter is better):");
    let mut rows = Vec::new();
    for experiment in [Experiment::Exp2, Experiment::Exp4] {
        for kind in [PolicyKind::Default, PolicyKind::Adapt3d] {
            let (result, _) = run(experiment, kind);
            rows.push((format!("{experiment} {}", kind.label()), result.hotspot_pct));
        }
    }
    let max = rows.iter().map(|r| r.1).fold(1e-9, f64::max);
    for (label, pct) in rows {
        println!("  {label:<22} {} {pct:5.2}%", bar(pct, max, 30));
    }
}
